// Dense full-tableau kernel plus the kernel-independent SimplexSolver
// facade (kernel selection, warm/cold orchestration, stats, telemetry).
// The sparse revised-simplex kernel lives in simplex_sparse.cpp; both
// implement SimplexSolver::Impl (simplex_impl.hpp).
#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "lp/simplex_impl.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::lp {

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
    case SolveStatus::kNodeLimit:
      return "node-limit";
  }
  return "unknown";
}

ColumnLayout build_column_layout(const Model& model) {
  ColumnLayout layout;
  const auto& vars = model.variables();
  layout.var_cols.assign(vars.size(), {});
  for (std::size_t v = 0; v < vars.size(); ++v) {
    const Variable& mv = vars[v];
    if (std::isfinite(mv.lower)) {
      layout.col_map.push_back({v, mv.lower, 1.0});
      layout.upper.push_back(std::isfinite(mv.upper) ? mv.upper - mv.lower
                                                     : kInfinity);
      layout.var_cols[v].push_back(layout.col_map.size() - 1);
    } else if (std::isfinite(mv.upper)) {
      // x = ub - y,  y in [0, inf)
      layout.col_map.push_back({v, mv.upper, -1.0});
      layout.upper.push_back(kInfinity);
      layout.var_cols[v].push_back(layout.col_map.size() - 1);
    } else {
      // free: x = y1 - y2
      layout.col_map.push_back({v, 0.0, 1.0});
      layout.upper.push_back(kInfinity);
      layout.var_cols[v].push_back(layout.col_map.size() - 1);
      layout.col_map.push_back({v, 0.0, -1.0});
      layout.upper.push_back(kInfinity);
      layout.var_cols[v].push_back(layout.col_map.size() - 1);
    }
  }
  return layout;
}

namespace {

/// All dense-kernel state.  The layout splits into
///  * static data built once from the model (base rows in a fixed
///    orientation, costs, column mapping),
///  * bound state shadowing the model's variable bounds (offsets / uppers,
///    mutated by set_bounds), and
///  * the live pivoted tableau (tab_/prhs_/basis_/status_/xb_/dj_), which
///    survives between solves so warm restarts can continue from it.
/// `prhs_` is the right-hand side pivoted along with the tableau (B^-1 b');
/// keeping it current is what makes bound changes patchable in O(rows).
struct DenseKernel final : SimplexSolver::Impl {
  std::size_t rows_ = 0;
  std::size_t structural_ = 0;     // model-variable (+ split) columns
  std::size_t cols_ = 0;           // structural + one slack per row
  std::size_t total_cols_ = 0;     // cols_ + one artificial per row
  std::size_t first_artificial_ = 0;

  std::vector<ColumnMap> col_map_;               // size structural_
  std::vector<std::vector<std::size_t>> var_cols_;  // model var -> columns
  std::vector<std::vector<double>> base_rows_;   // rows_ x cols_, unoriented
  std::vector<double> base_rhs_;                 // raw constraint rhs
  std::vector<bool> eq_row_;                     // frozen-slack rows
  std::vector<double> cost_;                     // phase-2 internal costs
  std::vector<double> phase1_cost_;              // 1 on artificials
  double cost_scale_ = 1.0;

  std::vector<double> upper_;                    // per internal column

  bool tableau_valid_ = false;
  std::vector<std::vector<double>> tab_;         // rows_ x total_cols_
  std::vector<double> row_sign_;                 // reset-time row orientation
  std::vector<double> prhs_;                     // pivoted rhs (B^-1 b')
  double rhs_scale_ = 1.0;                       // 1 + max |rhs| at reset
  std::vector<double> xb_;                       // basic variable values
  std::vector<std::size_t> basis_;               // column basic in each row
  std::vector<VarStatus> status_;                // per internal column
  std::vector<double> dj_;                       // reduced costs
  const std::vector<double>* active_cost_ = nullptr;
  /// Pricing list: columns not pinned by equal bounds (upper_ > 0), in
  /// ascending index order (Bland's rule relies on the ordering).  Rebuilt
  /// at every iterate / dual_reoptimize entry — upper_ only changes between
  /// phases (freeze_artificials) or between solves (set_bounds).
  std::vector<std::size_t> live_cols_;

  DenseKernel(const Model& model, const SimplexOptions& options)
      : Impl(model, options) {
    build_static();
  }

  void build_static();
  void reset_tableau();
  void compute_basic_values();
  void recompute_reduced_costs();
  void rebuild_live_cols();
  double current_internal_objective() const;
  std::size_t choose_entering(bool bland) const;
  SolveStatus iterate(bool phase_one, std::size_t& iterations);
  void pivot(std::size_t row, std::size_t col, double entering_value,
             VarStatus leaving_status);
  void pivot_for_load(std::size_t row, std::size_t col);
  bool drive_out_artificials();
  void freeze_artificials();
  LpSolution extract_solution(SolveStatus status,
                              std::size_t iterations) const;

  SolveStatus dual_reoptimize(std::size_t& iterations);
  bool same_basis(const Basis& b) const;
  void load_basis(const Basis& b);
  void adopt_statuses(const Basis& b);
  bool certify(const std::vector<double>& values) const;
  bool certify_dual() const;

  // SimplexSolver::Impl interface.
  void set_bounds(std::size_t var, double lower, double upper) override;
  void set_rhs(std::size_t row, double rhs) override;
  void invalidate() override { tableau_valid_ = false; }
  bool valid() const override { return tableau_valid_; }
  std::size_t num_rows() const override { return rows_; }
  LpSolution run_cold() override;
  bool warm_attempt(const Basis* parent, LpSolution& sol) override;
  Basis snapshot() const override;
};

void DenseKernel::build_static() {
  ColumnLayout layout = build_column_layout(model_);
  col_map_ = std::move(layout.col_map);
  var_cols_ = std::move(layout.var_cols);
  upper_ = std::move(layout.upper);
  structural_ = col_map_.size();
  rows_ = model_.num_constraints();
  cols_ = structural_ + rows_;
  first_artificial_ = cols_;
  // One artificial per row: which rows need one depends on the sign of the
  // (bound-dependent) right-hand side, so a reusable solver must keep every
  // slot allocated; unused artificials stay frozen at zero.
  total_cols_ = cols_ + rows_;

  base_rows_.assign(rows_, std::vector<double>(cols_, 0.0));
  base_rhs_.assign(rows_, 0.0);
  eq_row_.assign(rows_, false);
  for (std::size_t r = 0; r < rows_; ++r) {
    const Constraint& c = model_.constraints()[r];
    auto& row = base_rows_[r];
    for (const auto& [var, coef] : c.lhs.terms()) {
      for (const std::size_t col : var_cols_[var]) {
        row[col] += coef * col_map_[col].sign;
      }
    }
    base_rhs_[r] = c.rhs;
    const std::size_t slack = structural_ + r;
    switch (c.relation) {
      case Relation::kLe:
        row[slack] = 1.0;
        break;
      case Relation::kGe:
        row[slack] = -1.0;
        break;
      case Relation::kEq:
        row[slack] = 0.0;
        eq_row_[r] = true;
        break;
    }
  }
  upper_.resize(total_cols_, kInfinity);
  for (std::size_t r = 0; r < rows_; ++r) {
    upper_[structural_ + r] = eq_row_[r] ? 0.0 : kInfinity;
  }

  cost_scale_ = model_.objective_sense() == Sense::kMinimize ? 1.0 : -1.0;
  cost_.assign(total_cols_, 0.0);
  for (const auto& [var, coef] : model_.objective().terms()) {
    for (const std::size_t col : var_cols_[var]) {
      cost_[col] += cost_scale_ * coef * col_map_[col].sign;
    }
  }
  phase1_cost_.assign(total_cols_, 0.0);
  for (std::size_t c = first_artificial_; c < total_cols_; ++c) {
    phase1_cost_[c] = 1.0;
  }
}

void DenseKernel::reset_tableau() {
  tab_.resize(rows_);
  row_sign_.assign(rows_, 1.0);
  prhs_.assign(rows_, 0.0);
  basis_.assign(rows_, npos);
  status_.assign(total_cols_, VarStatus::kAtLower);
  dj_.assign(total_cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    auto& row = tab_[r];
    row.assign(total_cols_, 0.0);
    double b = base_rhs_[r];
    const auto& base = base_rows_[r];
    for (std::size_t c = 0; c < structural_; ++c) {
      row[c] = base[c];
      if (col_map_[c].offset != 0.0 && base[c] != 0.0) {
        b -= base[c] * col_map_[c].sign * col_map_[c].offset;
      }
    }
    const std::size_t slack = structural_ + r;
    row[slack] = base[slack];
    if (b < 0.0) {
      for (std::size_t c = 0; c < cols_; ++c) {
        row[c] = -row[c];
      }
      b = -b;
      row_sign_[r] = -1.0;
    }
    prhs_[r] = b;
    const std::size_t art = first_artificial_ + r;
    row[art] = 1.0;
    // A row can start with a basic slack only if its slack coefficient is
    // +1 after normalization; otherwise the artificial carries the row.
    if (row[slack] > 0.5) {
      basis_[r] = slack;
      upper_[art] = 0.0;
    } else {
      basis_[r] = art;
      upper_[art] = kInfinity;
    }
    status_[basis_[r]] = VarStatus::kBasic;
  }
  rhs_scale_ = 1.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    rhs_scale_ = std::max(rhs_scale_, 1.0 + prhs_[r]);  // prhs_ >= 0 here
  }
  xb_ = prhs_;  // every nonbasic column starts at its lower bound
  tableau_valid_ = true;
}

void DenseKernel::compute_basic_values() {
  xb_ = prhs_;
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kAtUpper) {
      MCS_ASSERT(std::isfinite(upper_[c]), "at-upper with infinite bound");
      if (upper_[c] == 0.0) continue;
      for (std::size_t r = 0; r < rows_; ++r) {
        xb_[r] -= tab_[r][c] * upper_[c];
      }
    }
  }
}

void DenseKernel::recompute_reduced_costs() {
  const std::vector<double>& c = *active_cost_;
  dj_ = c;
  for (std::size_t r = 0; r < rows_; ++r) {
    const double cb = c[basis_[r]];
    if (cb == 0.0) continue;
    const auto& row = tab_[r];
    for (std::size_t j = 0; j < total_cols_; ++j) {
      dj_[j] -= cb * row[j];
    }
  }
}

void DenseKernel::rebuild_live_cols() {
  live_cols_.clear();
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (upper_[j] > 0.0) {
      live_cols_.push_back(j);
    }
  }
  stats_.fixed_cols_skipped += total_cols_ - live_cols_.size();
}

double DenseKernel::current_internal_objective() const {
  const std::vector<double>& c = *active_cost_;
  double obj = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    obj += c[basis_[r]] * xb_[r];
  }
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == VarStatus::kAtUpper) {
      obj += c[j] * upper_[j];
    }
  }
  return obj;
}

std::size_t DenseKernel::choose_entering(bool bland) const {
  std::size_t best = npos;
  double best_score = opt_.reduced_cost_tol;
  for (const std::size_t j : live_cols_) {
    if (status_[j] == VarStatus::kBasic) continue;
    double violation = 0.0;
    if (status_[j] == VarStatus::kAtLower) {
      violation = -dj_[j];  // want dj < 0 to decrease objective
    } else {
      violation = dj_[j];  // at upper: want dj > 0 (decrease var)
    }
    if (violation > best_score) {
      if (bland) {
        return j;  // smallest index with a violation
      }
      best_score = violation;
      best = j;
    }
  }
  return best;
}

SolveStatus DenseKernel::iterate(bool phase_one, std::size_t& iterations) {
  recompute_reduced_costs();
  rebuild_live_cols();
  std::size_t since_refactor = 0;
  for (;;) {
    if (iterations >= opt_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    const bool bland = iterations >= opt_.bland_threshold;
    if (since_refactor >= opt_.refactor_period) {
      recompute_reduced_costs();
      since_refactor = 0;
    }
    const std::size_t q = choose_entering(bland);
    if (q == npos) {
      return SolveStatus::kOptimal;
    }
    ++iterations;
    ++since_refactor;

    const double dir = status_[q] == VarStatus::kAtLower ? 1.0 : -1.0;
    // Ratio test.
    double best_t = std::isfinite(upper_[q]) ? upper_[q] : kInfinity;
    std::size_t leave_row = npos;
    VarStatus leave_status = VarStatus::kAtLower;
    double best_pivot_mag = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double g = dir * tab_[r][q];
      if (g > opt_.pivot_tol) {
        // basic r decreases toward 0
        const double t = std::max(0.0, xb_[r]) / g;
        const bool better =
            t < best_t - 1e-12 ||
            (t < best_t + 1e-12 && leave_row != npos &&
             (bland ? basis_[r] < basis_[leave_row]
                    : std::abs(tab_[r][q]) > best_pivot_mag));
        if (t < best_t - 1e-12 || better) {
          best_t = std::min(best_t, t);
          leave_row = r;
          leave_status = VarStatus::kAtLower;
          best_pivot_mag = std::abs(tab_[r][q]);
        }
      } else if (g < -opt_.pivot_tol && std::isfinite(upper_[basis_[r]])) {
        // basic r increases toward its upper bound
        const double room = upper_[basis_[r]] - xb_[r];
        const double t = std::max(0.0, room) / (-g);
        const bool better =
            t < best_t - 1e-12 ||
            (t < best_t + 1e-12 && leave_row != npos &&
             (bland ? basis_[r] < basis_[leave_row]
                    : std::abs(tab_[r][q]) > best_pivot_mag));
        if (t < best_t - 1e-12 || better) {
          best_t = std::min(best_t, t);
          leave_row = r;
          leave_status = VarStatus::kAtUpper;
          best_pivot_mag = std::abs(tab_[r][q]);
        }
      }
    }

    if (!std::isfinite(best_t)) {
      return phase_one ? SolveStatus::kIterationLimit  // cannot happen
                       : SolveStatus::kUnbounded;
    }

    if (leave_row == npos) {
      // Bound flip: entering variable traverses to its other bound.
      MCS_ASSERT(std::isfinite(upper_[q]), "bound flip without upper bound");
      for (std::size_t r = 0; r < rows_; ++r) {
        xb_[r] -= dir * best_t * tab_[r][q];
      }
      status_[q] = status_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                     : VarStatus::kAtLower;
      ++stats_.bound_flips;
      continue;
    }

    const double entering_start =
        status_[q] == VarStatus::kAtLower ? 0.0 : upper_[q];
    const double entering_value = entering_start + dir * best_t;
    pivot(leave_row, q, entering_value, leave_status);
  }
}

void DenseKernel::pivot(std::size_t row, std::size_t col,
                        double entering_value, VarStatus leaving_status) {
  const std::size_t leaving = basis_[row];
  const double dir = status_[col] == VarStatus::kAtLower ? 1.0 : -1.0;
  const double step = std::abs((entering_value -
                                (status_[col] == VarStatus::kAtLower
                                     ? 0.0
                                     : upper_[col])));
  // Update basic values before changing the tableau.
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    xb_[r] -= dir * step * tab_[r][col];
  }
  xb_[row] = entering_value;

  // Row elimination (the pivoted rhs column rides along).
  auto& prow = tab_[row];
  const double pivot_elem = prow[col];
  MCS_ASSERT(std::abs(pivot_elem) > 0.0, "zero pivot");
  const double inv = 1.0 / pivot_elem;
  for (double& entry : prow) {
    entry *= inv;
  }
  prow[col] = 1.0;
  prhs_[row] *= inv;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    auto& orow = tab_[r];
    const double factor = orow[col];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < total_cols_; ++j) {
      orow[j] -= factor * prow[j];
    }
    orow[col] = 0.0;
    prhs_[r] -= factor * prhs_[row];
  }
  // Incremental reduced-cost update.
  const double dq = dj_[col];
  if (dq != 0.0) {
    for (std::size_t j = 0; j < total_cols_; ++j) {
      dj_[j] -= dq * prow[j];
    }
  }
  dj_[col] = 0.0;

  basis_[row] = col;
  status_[col] = VarStatus::kBasic;
  status_[leaving] = leaving_status;
  if (leaving_status == VarStatus::kAtUpper &&
      !std::isfinite(upper_[leaving])) {
    // Leaving at "upper" with infinite bound cannot happen (ratio test
    // guards with isfinite); normalize to lower for safety.
    status_[leaving] = VarStatus::kAtLower;
  }
}

// Bare tableau pivot used while loading a basis snapshot: no xb / dj upkeep
// (both are recomputed wholesale afterwards).
void DenseKernel::pivot_for_load(std::size_t row, std::size_t col) {
  auto& prow = tab_[row];
  const double inv = 1.0 / prow[col];
  for (double& entry : prow) {
    entry *= inv;
  }
  prow[col] = 1.0;
  prhs_[row] *= inv;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r == row) continue;
    auto& orow = tab_[r];
    const double factor = orow[col];
    if (factor == 0.0) continue;
    for (std::size_t j = 0; j < total_cols_; ++j) {
      orow[j] -= factor * prow[j];
    }
    orow[col] = 0.0;
    prhs_[r] -= factor * prhs_[row];
  }
  status_[basis_[row]] = VarStatus::kAtLower;
  basis_[row] = col;
  status_[col] = VarStatus::kBasic;
}

bool DenseKernel::drive_out_artificials() {
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] < first_artificial_) continue;
    // Basic artificial (value must be ~0 after a feasible phase 1).
    if (std::abs(xb_[r]) > opt_.feasibility_tol) {
      return false;
    }
    // Try to pivot in any non-artificial column with a usable element.
    std::size_t replacement = npos;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (upper_[j] <= 0.0) continue;
      if (std::abs(tab_[r][j]) > opt_.pivot_tol) {
        replacement = j;
        break;
      }
    }
    if (replacement == npos) {
      continue;  // redundant row; artificial stays basic at zero
    }
    const double entering_value =
        status_[replacement] == VarStatus::kAtLower ? 0.0
                                                    : upper_[replacement];
    // Degenerate pivot: entering keeps its current value (step 0).
    pivot(r, replacement, entering_value, VarStatus::kAtLower);
  }
  freeze_artificials();
  return true;
}

void DenseKernel::freeze_artificials() {
  // Freeze every artificial at zero so later phases (and warm restarts)
  // cannot move one; a basic artificial stays basic with bounds [0, 0], so
  // the dual phase treats any nonzero value as a violation to repair.
  for (std::size_t c = first_artificial_; c < total_cols_; ++c) {
    if (status_[c] != VarStatus::kBasic) {
      status_[c] = VarStatus::kAtLower;
    }
    upper_[c] = 0.0;
  }
}

LpSolution DenseKernel::extract_solution(SolveStatus status,
                                         std::size_t iterations) const {
  LpSolution sol;
  sol.status = status;
  sol.iterations = iterations;
  if (status != SolveStatus::kOptimal) {
    return sol;
  }
  std::vector<double> internal(total_cols_, 0.0);
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kAtUpper) {
      internal[c] = upper_[c];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    internal[basis_[r]] = xb_[r];
  }
  sol.values.assign(model_.num_variables(), 0.0);
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    const ColumnMap& cm = col_map_[c];
    if (cm.sign > 0.0) {
      sol.values[cm.model_var] += cm.offset + internal[c];
    } else {
      // Either ub-shifted single column (offset=ub) or negative split half.
      sol.values[cm.model_var] += cm.offset - internal[c];
    }
  }
  sol.objective = model_.evaluate(model_.objective(), sol.values);
  return sol;
}

LpSolution DenseKernel::run_cold() {
  reset_tableau();
  std::size_t iterations = 0;

  // Phase 1 (only when artificials exist and can be nonzero).
  bool need_phase1 = false;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] >= first_artificial_ && xb_[r] > opt_.feasibility_tol) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    active_cost_ = &phase1_cost_;
    const SolveStatus p1 = iterate(/*phase_one=*/true, iterations);
    if (p1 == SolveStatus::kIterationLimit) {
      return extract_solution(SolveStatus::kIterationLimit, iterations);
    }
    // Relative infeasibility test: the phase-1 objective (total artificial
    // residual) scales with the problem's rhs magnitudes, so an absolute
    // threshold misclassifies well-posed but large-rhs models as
    // infeasible.  Scale-relative, consistent with the ratio-test
    // tolerances in dual_reoptimize below — but capped: uncapped, tick
    // magnitudes around 1e8-1e9 would push the threshold past one tick,
    // the smallest true violation in the analysis models, and a genuinely
    // infeasible model would slip through as feasible.  The cap keeps the
    // threshold at least a decade below tick scale for the default
    // feasibility_tol.
    if (current_internal_objective() >
        opt_.feasibility_tol * 10.0 * std::min(rhs_scale_, kPhase1ScaleCap)) {
      freeze_artificials();
      return extract_solution(SolveStatus::kInfeasible, iterations);
    }
  }
  if (!drive_out_artificials()) {
    return extract_solution(SolveStatus::kInfeasible, iterations);
  }

  active_cost_ = &cost_;
  const SolveStatus p2 = iterate(/*phase_one=*/false, iterations);
  return extract_solution(p2, iterations);
}

/// Dual simplex until primal feasibility.  Requires a pivoted tableau with
/// fresh xb_/dj_.  Returns kOptimal when primal feasible (a closing primal
/// phase then certifies optimality), kInfeasible on a valid infeasibility
/// certificate, kIterationLimit when the caller should fall back cold.
SolveStatus DenseKernel::dual_reoptimize(std::size_t& iterations) {
  rebuild_live_cols();
  std::size_t since_refactor = 0;
  for (;;) {
    if (iterations >= opt_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    const bool bland = iterations >= opt_.bland_threshold;
    if (since_refactor >= opt_.refactor_period) {
      recompute_reduced_costs();
      compute_basic_values();
      since_refactor = 0;
    }

    // Most-violated basic variable leaves.  The violation threshold is
    // scaled by the variable's magnitude: on tick-valued models (entries
    // ~1e7) an absolute 1e-7 cutoff is below floating-point noise, and an
    // absolute-threshold dual grinds degenerate pivots forever chasing
    // noise it can never eliminate.
    std::size_t row = npos;
    double worst = 0.0;
    bool below = true;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double x = xb_[r];
      const double ub = upper_[basis_[r]];
      const double scale =
          1.0 + std::abs(x) + (std::isfinite(ub) ? ub : 0.0);
      const double tol = opt_.feasibility_tol * scale;
      if (-x > tol && -x - tol > worst) {
        worst = -x - tol;
        row = r;
        below = true;
      }
      if (std::isfinite(ub) && x - ub > tol && x - ub - tol > worst) {
        worst = x - ub - tol;
        row = r;
        below = false;
      }
    }
    if (row == npos) {
      return SolveStatus::kOptimal;  // primal feasible
    }

    // Entering column: preserves dual feasibility (min |dj| / |alpha|
    // ratio) among columns that can move the leaving variable back to its
    // violated bound.  The pivot floor is relative to the row's magnitude:
    // an absolute floor lets ~1e-8 pivots through on rows with ~1e7
    // entries, and one such pivot wrecks the dense tableau for good.
    const auto& trow = tab_[row];
    double row_mag = 0.0;
    for (std::size_t j = 0; j < total_cols_; ++j) {
      row_mag = std::max(row_mag, std::abs(trow[j]));
    }
    const double alpha_floor =
        std::max(opt_.pivot_tol, 1e-9 * row_mag);
    std::size_t best = npos;
    double best_ratio = kInfinity;
    double best_mag = 0.0;
    for (const std::size_t j : live_cols_) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double alpha = trow[j];
      if (std::abs(alpha) <= alpha_floor) continue;
      const bool at_lower = status_[j] == VarStatus::kAtLower;
      const bool candidate =
          below ? (at_lower ? alpha < 0.0 : alpha > 0.0)
                : (at_lower ? alpha > 0.0 : alpha < 0.0);
      if (!candidate) continue;
      const double ratio = std::abs(dj_[j]) / std::abs(alpha);
      if (bland) {
        if (best == npos) best = j;  // smallest candidate index
        continue;
      }
      if (ratio < best_ratio - 1e-12 ||
          (ratio < best_ratio + 1e-12 && std::abs(alpha) > best_mag)) {
        best = j;
        best_ratio = ratio;
        best_mag = std::abs(alpha);
      }
    }
    if (best == npos) {
      // On exact arithmetic this row would prove primal infeasibility, but
      // the relative pivot floor (and accumulated tableau error) can also
      // produce it spuriously — solve_warm never trusts it and re-solves
      // cold for the authoritative status.
      return SolveStatus::kInfeasible;
    }

    ++iterations;
    ++since_refactor;
    const double target = below ? 0.0 : upper_[basis_[row]];
    const double alpha = trow[best];
    const double dir = status_[best] == VarStatus::kAtLower ? 1.0 : -1.0;
    const double t = (xb_[row] - target) / (alpha * dir);
    MCS_ASSERT(t >= 0.0, "dual simplex: negative step");
    const double start =
        status_[best] == VarStatus::kAtLower ? 0.0 : upper_[best];
    pivot(row, best, start + dir * t,
          below ? VarStatus::kAtLower : VarStatus::kAtUpper);
  }
}

bool DenseKernel::same_basis(const Basis& b) const {
  if (b.basic.size() != rows_ || b.status.size() != total_cols_) {
    return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] != b.basic[r]) return false;
  }
  return true;
}

/// Adopts the snapshot's nonbasic statuses (basic columns keep kBasic).
/// Statuses are free to reassign without pivoting — they only select which
/// bound a nonbasic column sits at.
void DenseKernel::adopt_statuses(const Basis& b) {
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kBasic) continue;
    VarStatus s = static_cast<VarStatus>(b.status[c]);
    if (s == VarStatus::kBasic) s = VarStatus::kAtLower;
    if (s == VarStatus::kAtUpper && !std::isfinite(upper_[c])) {
      s = VarStatus::kAtLower;
    }
    status_[c] = s;
  }
}

/// Independent feasibility audit of an extracted solution against the
/// *original* model rows and the solver's current bound view.  The dense
/// tableau accumulates floating-point error across forced (dual / basis
/// load) pivots; when that error grows past noise the claimed vertex stops
/// satisfying the real constraints, and this check is what catches it —
/// solve_warm falls back to an authoritative cold solve on failure.  Cost
/// is one pass over the constraint matrix (about one pivot's worth).
bool DenseKernel::certify(const std::vector<double>& values) const {
  // Tolerances are relative to the magnitude of what is being checked:
  // tick-valued models carry ~1e7 entries, where even a clean primal path
  // leaves noise far above any absolute epsilon.
  const double ftol = 100.0 * opt_.feasibility_tol;
  for (std::size_t c = 0; c < structural_; ++c) {
    const ColumnMap& cm = col_map_[c];
    if (cm.sign < 0.0 || var_cols_[cm.model_var].size() != 1) {
      continue;  // split / upper-shifted columns have static bounds
    }
    const double v = values[cm.model_var];
    const double tol = ftol * (1.0 + std::abs(v));
    if (v < cm.offset - tol) return false;
    if (std::isfinite(upper_[c]) && v > cm.offset + upper_[c] + tol) {
      return false;
    }
  }
  for (const Constraint& con : model_.constraints()) {
    const double lhs = model_.evaluate(con.lhs, values);
    const double tol = ftol * (1.0 + std::abs(con.rhs) + std::abs(lhs));
    switch (con.relation) {
      case Relation::kLe:
        if (lhs > con.rhs + tol) return false;
        break;
      case Relation::kGe:
        if (lhs < con.rhs - tol) return false;
        break;
      case Relation::kEq:
        if (std::abs(lhs - con.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

/// Independent *optimality* audit of the current claimed-optimal basis.
/// certify() only proves the extracted point is feasible; a corrupted
/// tableau can still present a feasible-but-suboptimal vertex as "optimal",
/// and inside branch & bound such an under-bound wrongly prunes subtrees.
/// This check recovers the dual vector y = c_B B^-1 from the tableau's
/// artificial block and verifies dual feasibility of every column against
/// the pristine constraint matrix: basic columns must price to ~0, columns
/// at lower bound to >= 0, columns at upper bound to <= 0.  Together with
/// certify() this is a complete primal-dual certificate, so the warm path
/// never returns a bound the original data cannot back up.  Cost is two
/// passes over the matrix (about two pivots' worth).
bool DenseKernel::certify_dual() const {
  const double dtol = 100.0 * opt_.feasibility_tol;
  // y (unoriented rows): the artificial block of tab_ is B^-1 because the
  // artificials entered reset_tableau as an identity block.
  std::vector<double> y(rows_, 0.0);
  for (std::size_t q = 0; q < rows_; ++q) {
    const double cb = cost_[basis_[q]];
    if (cb == 0.0) continue;
    const auto& trow = tab_[q];
    for (std::size_t r = 0; r < rows_; ++r) {
      y[r] += cb * trow[first_artificial_ + r];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    y[r] *= row_sign_[r];
    // A basic artificial carrying weight means the tableau point does not
    // lie in the original constraint space at all.
    if (basis_[r] >= first_artificial_ &&
        std::abs(xb_[r]) > dtol * (1.0 + std::abs(prhs_[r]))) {
      return false;
    }
  }
  // Price every live column against the original rows.
  std::vector<double> dj(cols_);
  std::vector<double> mag(cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    dj[j] = cost_[j];
    mag[j] = std::abs(cost_[j]);
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const double yr = y[r];
    if (yr == 0.0) continue;
    const auto& row = base_rows_[r];
    for (std::size_t j = 0; j < cols_; ++j) {
      const double t = yr * row[j];
      dj[j] -= t;
      mag[j] += std::abs(t);
    }
  }
  for (std::size_t j = 0; j < cols_; ++j) {
    if (status_[j] != VarStatus::kBasic && upper_[j] <= 0.0) {
      continue;  // fixed column: any sign is dual feasible
    }
    const double tol = dtol * (1.0 + mag[j]);
    switch (status_[j]) {
      case VarStatus::kBasic:
        if (std::abs(dj[j]) > tol) return false;
        break;
      case VarStatus::kAtLower:
        if (dj[j] < -tol) return false;
        break;
      case VarStatus::kAtUpper:
        if (dj[j] > tol) return false;
        break;
    }
  }
  return true;
}

/// Best-effort crash of the snapshot basis: rebuild the base tableau under
/// the current bounds, then pivot the requested columns in row by row.
/// Rows whose requested pivot element is numerically unusable keep whatever
/// basis they have — the subsequent dual + primal phases are correct from
/// any basis, a partial load merely costs extra pivots.
void DenseKernel::load_basis(const Basis& b) {
  reset_tableau();
  // Structural columns first, then slacks: a slack requested in a foreign
  // row has no coefficient there until other pivots fill the row in.
  // Artificials only ever stay basic in their own row, where reset already
  // placed a unit column.
  const auto pass = [&](bool structural_pass) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::size_t want = b.basic[r];
      if (basis_[r] == want) continue;
      const bool is_structural = want < structural_;
      if (is_structural != structural_pass) continue;
      if (status_[want] == VarStatus::kBasic) continue;  // taken elsewhere
      // Relative pivot floor: skipping a row is cheap (a few extra dual
      // pivots), eliminating with a tiny pivot on a large row is not.
      double row_mag = 0.0;
      const auto& trow = tab_[r];
      for (std::size_t j = 0; j < cols_; ++j) {
        row_mag = std::max(row_mag, std::abs(trow[j]));
      }
      if (std::abs(trow[want]) <=
          std::max(opt_.pivot_tol, 1e-7 * row_mag)) {
        continue;
      }
      pivot_for_load(r, want);
    }
  };
  pass(true);
  pass(false);
  adopt_statuses(b);
  freeze_artificials();
}

void DenseKernel::set_bounds(std::size_t var, double lower, double upper) {
  MCS_REQUIRE(var < var_cols_.size(), "set_bounds: unknown variable");
  MCS_REQUIRE(std::isfinite(lower) && lower <= upper,
              "set_bounds: lower must be finite and <= upper");
  MCS_REQUIRE(var_cols_[var].size() == 1 &&
                  col_map_[var_cols_[var].front()].sign > 0.0,
              "set_bounds: variable must have a finite lower bound in the "
              "model (single shifted column)");
  const std::size_t c = var_cols_[var].front();
  ColumnMap& cm = col_map_[c];
  const double d_off = lower - cm.offset;
  cm.offset = lower;
  upper_[c] = std::isfinite(upper) ? upper - lower : kInfinity;
  if (status_.size() == total_cols_ &&
      status_[c] == VarStatus::kAtUpper && !std::isfinite(upper_[c])) {
    status_[c] = VarStatus::kAtLower;
  }
  if (tableau_valid_ && d_off != 0.0) {
    // Shifting the column's offset shifts the effective rhs: patch the
    // pivoted rhs with the pivoted column (O(rows)).
    for (std::size_t r = 0; r < rows_; ++r) {
      const double a = tab_[r][c];
      if (a != 0.0) prhs_[r] -= a * d_off;
    }
  }
}

void DenseKernel::set_rhs(std::size_t row, double rhs) {
  MCS_REQUIRE(row < rows_, "set_rhs: unknown constraint");
  MCS_REQUIRE(std::isfinite(rhs), "set_rhs: non-finite right-hand side");
  if (base_rhs_[row] == rhs) return;
  base_rhs_[row] = rhs;
  // The pivoted rhs depends on every base rhs through B^-1; rebuilding it
  // incrementally would need the row's pivoted column, which is exactly
  // what a cold reset recomputes anyway.  Invalidate and let the next
  // solve start cold (solve_warm degrades to solve() on its own).
  tableau_valid_ = false;
}

bool DenseKernel::warm_attempt(const Basis* parent, LpSolution& sol) {
  if (parent != nullptr && !parent->empty()) {
    if (same_basis(*parent)) {
      adopt_statuses(*parent);
    } else {
      load_basis(*parent);
    }
  }
  compute_basic_values();
  active_cost_ = &cost_;
  recompute_reduced_costs();

  // Cap this attempt's pivots: a warm restart that needs more than a few
  // times the row count is pathological (degenerate grinding), and the
  // cold fallback is cheaper than letting it run to max_iterations.
  const std::size_t saved_max = opt_.max_iterations;
  opt_.max_iterations = std::min(saved_max, warm_budget());
  std::size_t iterations = 0;
  const SolveStatus dual = dual_reoptimize(iterations);
  SolveStatus final_status = dual;
  if (dual == SolveStatus::kOptimal) {
    final_status = iterate(/*phase_one=*/false, iterations);
  }
  opt_.max_iterations = saved_max;
  sol.iterations = iterations;
  // Only a *certified* optimum is returned from the warm path.  Everything
  // else — iteration limit, an infeasibility certificate (which tableau
  // error can fabricate), an unboundedness claim, or an extracted solution
  // that fails the independent feasibility audit — is re-solved cold; the
  // cold result is authoritative.
  if (final_status == SolveStatus::kOptimal) {
    sol = extract_solution(final_status, iterations);
    if (certify(sol.values) && certify_dual()) {
      return true;
    }
  }
  return false;
}

Basis DenseKernel::snapshot() const {
  Basis b;
  if (!tableau_valid_) return b;
  b.status.resize(total_cols_);
  for (std::size_t c = 0; c < total_cols_; ++c) {
    b.status[c] = static_cast<std::uint8_t>(status_[c]);
  }
  b.basic.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    b.basic[r] = static_cast<std::uint32_t>(basis_[r]);
  }
  return b;
}

}  // namespace

std::unique_ptr<SimplexSolver::Impl> make_dense_kernel(
    const Model& model, const SimplexOptions& options) {
  return std::make_unique<DenseKernel>(model, options);
}

SimplexSolver::SimplexSolver(const Model& model,
                             const SimplexOptions& options)
    : impl_(options.kernel == SimplexKernel::kDense
                ? make_dense_kernel(model, options)
                : make_sparse_kernel(model, options)) {}

SimplexSolver::~SimplexSolver() = default;

void SimplexSolver::set_bounds(VarId v, double lower, double upper) {
  impl_->set_bounds(v.index, lower, upper);
}

void SimplexSolver::set_rhs(std::size_t row, double rhs) {
  impl_->set_rhs(row, rhs);
}

void SimplexSolver::invalidate() { impl_->invalidate(); }

namespace {

/// Emits the per-solve delta of the kernel-maintained counters.  The
/// kernels only bump `stats_` — a hashed telemetry lookup per pivot would
/// dominate the pivot itself on these small models.
void flush_kernel_telemetry(const SimplexStats& now,
                            const SimplexStats& before) {
  namespace telemetry = support::telemetry;
  if (!telemetry::enabled()) {
    return;
  }
  const auto emit = [](const char* key, std::size_t prev, std::size_t cur) {
    if (cur != prev) {
      support::telemetry::count(key, cur - prev);
    }
  };
  emit("simplex.refactorizations", before.refactorizations,
       now.refactorizations);
  emit("simplex.eta_nnz", before.eta_nnz, now.eta_nnz);
  emit("simplex.bound_flips", before.bound_flips, now.bound_flips);
  emit("simplex.devex_resets", before.devex_resets, now.devex_resets);
  emit("simplex.fixed_cols_skipped", before.fixed_cols_skipped,
       now.fixed_cols_skipped);
}

}  // namespace

LpSolution SimplexSolver::solve() {
  namespace telemetry = support::telemetry;
  impl_->warm_since_cold_ = 0;
  const SimplexStats before = impl_->stats_;
  LpSolution sol = impl_->run_cold();
  ++impl_->stats_.cold_solves;
  impl_->stats_.cold_pivots += sol.iterations;
  if (telemetry::enabled()) {
    telemetry::count("simplex.cold_pivots", sol.iterations);
  }
  flush_kernel_telemetry(impl_->stats_, before);
  return sol;
}

LpSolution SimplexSolver::solve_warm(const Basis* parent) {
  namespace telemetry = support::telemetry;
  Impl& im = *impl_;
  if (!im.valid()) {
    return solve();
  }
  if (++im.warm_since_cold_ > im.opt_.warm_refresh_period) {
    // Scheduled hygiene restart: bounds drift accumulated in the pivoted
    // right-hand side (dense) or eta file round-off (sparse) resets.
    return solve();
  }
  ++im.stats_.warm_solves;
  const SimplexStats before = im.stats_;
  LpSolution sol;
  const bool certified = im.warm_attempt(parent, sol);
  im.stats_.warm_pivots += sol.iterations;
  if (telemetry::enabled()) {
    telemetry::count("simplex.warm_pivots", sol.iterations);
  }
  flush_kernel_telemetry(im.stats_, before);
  if (certified) {
    return sol;
  }
  ++im.stats_.warm_fallbacks;
  if (telemetry::enabled()) {
    telemetry::count("simplex.warm_fallbacks");
  }
  return solve();
}

Basis SimplexSolver::basis() const { return impl_->snapshot(); }

const SimplexStats& SimplexSolver::stats() const noexcept {
  return impl_->stats_;
}

LpSolution solve_lp(const Model& model, const SimplexOptions& options) {
  namespace telemetry = support::telemetry;
  const telemetry::ScopedTimer timer("lp.solve_lp");
  SimplexSolver solver(model, options);
  LpSolution sol = solver.solve();
  if (telemetry::enabled()) {
    telemetry::count("lp.solves");
    telemetry::count("lp.simplex_iterations", sol.iterations);
    if (sol.status == SolveStatus::kIterationLimit) {
      telemetry::count("lp.iteration_limit_hits");
    }
  }
  return sol;
}

}  // namespace mcs::lp
