// MILP presolve: a reduction pipeline run before branch & bound.
//
// The delay MILPs of the analysis layer carry structure a solver can
// eliminate before the first pivot: placement binaries pinned by bounds
// (LS-marking patches fix whole column families to zero), cardinality rows
// that collapse to singletons once their columns are pinned, interference
// budgets that are slack or zero, and big-M coefficients far above what
// the surviving columns can activate.  `presolve()` applies the classic
// reductions —
//
//   * fixed-column substitution (lower == upper),
//   * singleton-row elimination into variable bounds,
//   * activity-based redundant / forcing row detection,
//   * activity-based bound tightening,
//   * big-M coefficient strengthening on <= rows over 0/1 columns,
//   * duplicate / dominated row removal,
//
// to a fixpoint and emits a reduced `Model` plus the exact postsolve map
// (postsolve.hpp) back to the original space.
//
// Exactness contract: every reduction preserves the set of feasible
// *integer* points (projected onto the surviving columns) and the
// objective value of every such point — the reduced model's MILP optimum
// equals the original's exactly, though its LP relaxation may be strictly
// tighter.  Every reduction is logged; the mcs::check MCS-F3xx rules audit
// the log, the map, and postsolved solutions against the pristine model.
//
// Telemetry (when enabled): lp.presolve.runs, lp.presolve.rows_removed,
// lp.presolve.cols_removed, lp.presolve.bounds_tightened,
// lp.presolve.coefficients_tightened, lp.presolve.rows_scaled,
// lp.presolve.cols_scaled, lp.presolve.infeasible.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/model.hpp"
#include "lp/postsolve.hpp"

namespace mcs::lp::presolve {

struct PresolveOptions {
  /// Comparison tolerance for redundancy / forcing / infeasibility tests.
  /// Kept far below one tick: the analysis models are integral, so true
  /// slack is >= 1 and true violations are >= 1 — the tolerance only
  /// absorbs floating-point summation noise.
  double feasibility_tol = 1e-9;
  /// Reduction rounds before giving up on reaching a fixpoint.
  std::size_t max_rounds = 16;
  /// Geometric-mean row/column equilibration of the reduced model.  Scale
  /// factors are powers of two (exact in floating point, so the scaled
  /// model is a reparametrization, not an approximation) and are carried
  /// in the PostsolveMap; integral columns and their bounds are never
  /// scaled, so branching, pack-row detection, and integrality are
  /// untouched.  Mixed-magnitude rows (unit placement coefficients next to
  /// big-M delay terms) are what the sparse kernel's relative tolerances
  /// struggle with most; equilibration narrows that spread before the
  /// first pivot.
  bool equilibrate = true;
};

enum class ReductionKind {
  kFixedColumn,           ///< column fixed (lower == upper) and substituted
  kSingletonRow,          ///< one-term row folded into a variable bound
  kRedundantRow,          ///< row implied by the column bounds alone
  kForcingRow,            ///< row satisfiable only at one bound vector
  kDuplicateRow,          ///< row dominated by an identical-coefficient row
  kBoundTightened,        ///< variable bound tightened from a row's activity
  kCoefficientTightened,  ///< big-M style coefficient strengthening
};

const char* to_string(ReductionKind kind) noexcept;

/// One log entry per reduction applied (MCS-F301 audits the totals).
struct Reduction {
  ReductionKind kind{};
  /// Original column index (kFixedColumn / kBoundTightened) or original
  /// row index (all row reductions / kCoefficientTightened).
  std::size_t index = 0;
  /// Fixed value, new bound, or new coefficient; 0 when not applicable.
  double value = 0.0;
  /// kDuplicateRow: the surviving row; kCoefficientTightened /
  /// kBoundTightened: the column involved; otherwise kRemoved.
  std::size_t aux = kRemoved;
};

struct PresolveStats {
  std::size_t rows_removed = 0;
  std::size_t cols_removed = 0;
  std::size_t bounds_tightened = 0;
  std::size_t coefficients_tightened = 0;
  std::size_t rounds = 0;
  /// Rows / continuous columns whose equilibration scale ended up != 1.
  std::size_t rows_scaled = 0;
  std::size_t cols_scaled = 0;
};

struct Presolved {
  /// Presolve proved the model infeasible; `reduced` is then empty and the
  /// map covers only the dimensions (no column survives).
  bool infeasible = false;
  Model reduced;
  PostsolveMap map;
  std::vector<Reduction> log;
  PresolveStats stats;
};

/// Runs the reduction pipeline on `model` (not modified).  Deterministic
/// for a fixed model and options.
Presolved presolve(const Model& model, const PresolveOptions& options = {});

}  // namespace mcs::lp::presolve
