// Postsolve side of the presolve pipeline (presolve.hpp): the exact map
// from a reduced model's variable/row space back to the original model's.
//
// Presolve only ever *removes* columns (fixing them at a proven value) and
// rows (proven redundant, duplicate, or folded into a bound), tightens
// what survives, and optionally *rescales* it (geometric-mean
// equilibration); it never splits, merges, or reorders.  The map is
// therefore a monotone embedding — surviving columns/rows keep their
// original relative order — and postsolving a primal point is exact: the
// fixed coordinates are re-inserted at their recorded values, and scaled
// coordinates are multiplied back by their power-of-two column scale
// (exact in floating point), nothing is approximated.  Objective values need no translation at all (the reduced
// model's objective keeps the fixed columns' contribution as a constant),
// so dual bounds and incumbent objectives pass through unchanged and the
// independent primal+dual certificate of the simplex layer keeps working
// on the reduced model as-is.
#pragma once

#include <cstddef>
#include <vector>

namespace mcs::lp::presolve {

/// Sentinel for "this column/row does not exist in the reduced model".
inline constexpr std::size_t kRemoved = static_cast<std::size_t>(-1);

/// Exact original <-> reduced mapping recorded while presolving.
struct PostsolveMap {
  std::size_t original_cols = 0;
  std::size_t original_rows = 0;
  /// original column -> reduced column, or kRemoved when fixed.
  std::vector<std::size_t> col_map;
  /// Proven value of each fixed column (meaningful iff col_map == kRemoved).
  std::vector<double> fixed_value;
  /// original row -> reduced row, or kRemoved when eliminated.
  std::vector<std::size_t> row_map;
  /// Equilibration scales, indexed by *reduced* row/column.  Empty means
  /// all ones (equilibration off or a no-op).  Reduced row i holds
  /// row_scale[i] * (original coefficients and rhs); reduced column j
  /// holds x_original / col_scale[j] — so original = col_scale * reduced.
  /// Always powers of two, so both directions are exact.
  std::vector<double> row_scale;
  std::vector<double> col_scale;

  std::size_t reduced_cols() const noexcept;
  std::size_t reduced_rows() const noexcept;

  /// Maps a reduced-space primal point back to original variable space by
  /// re-inserting every fixed column at its recorded value.  Exact.
  std::vector<double> postsolve_primal(
      const std::vector<double>& reduced) const;

  /// Restricts an original-space point (a warm-start incumbent) to reduced
  /// space.  Returns false — leaving `out` untouched — when the point
  /// disagrees with a fixing by more than `tol`: such a point is no longer
  /// feasible after the fixings and must not seed the reduced search.
  bool restrict_primal(const std::vector<double>& original, double tol,
                       std::vector<double>* out) const;

  /// Restricts per-column data (branch priorities) to the reduced space.
  std::vector<int> restrict_priorities(const std::vector<int>& original) const;
};

}  // namespace mcs::lp::presolve
