#include "lp/sparse_matrix.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::lp {

SparseMatrix SparseMatrix::Builder::build() && {
  // Column-major ordering with row as the secondary key; `seq` keeps
  // duplicate (row, col) entries in insertion order so their accumulation
  // order — and therefore the rounded sum — matches the dense kernel's
  // incremental `+=` into a tableau cell.
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.col != b.col) return a.col < b.col;
              if (a.row != b.row) return a.row < b.row;
              return a.seq < b.seq;
            });

  SparseMatrix m;
  m.rows_ = rows_;
  m.col_start_.assign(cols_ + 1, 0);
  m.row_ind_.reserve(entries_.size());
  m.values_.reserve(entries_.size());

  std::size_t i = 0;
  for (std::size_t c = 0; c < cols_; ++c) {
    while (i < entries_.size() && entries_[i].col == c) {
      MCS_ASSERT(entries_[i].row < rows_, "sparse build: row out of range");
      const std::size_t row = entries_[i].row;
      double acc = 0.0;
      for (; i < entries_.size() && entries_[i].col == c &&
             entries_[i].row == row;
           ++i) {
        acc += entries_[i].value;
      }
      if (acc != 0.0) {
        m.row_ind_.push_back(static_cast<std::uint32_t>(row));
        m.values_.push_back(acc);
      }
    }
    m.col_start_[c + 1] = m.row_ind_.size();
  }
  MCS_ASSERT(i == entries_.size(), "sparse build: column out of range");

  // Row-major mirror via a counting pass over the finished CSC arrays (the
  // mirror therefore holds exactly the accumulated values, in ascending
  // column order within each row).
  m.row_start_.assign(rows_ + 1, 0);
  for (const std::uint32_t r : m.row_ind_) {
    ++m.row_start_[r + 1];
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    m.row_start_[r + 1] += m.row_start_[r];
  }
  m.col_ind_.resize(m.row_ind_.size());
  m.row_values_.resize(m.values_.size());
  std::vector<std::size_t> fill = m.row_start_;
  for (std::size_t c = 0; c < cols_; ++c) {
    for (std::size_t k = m.col_start_[c]; k < m.col_start_[c + 1]; ++k) {
      const std::size_t slot = fill[m.row_ind_[k]]++;
      m.col_ind_[slot] = static_cast<std::uint32_t>(c);
      m.row_values_[slot] = m.values_[k];
    }
  }
  return m;
}

}  // namespace mcs::lp
