#include "lp/lp_writer.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "support/contracts.hpp"

namespace mcs::lp {

namespace {

/// LP-format-safe names: keep [A-Za-z0-9_], never start with a digit or
/// 'e'/'E' (which the format reads as part of a number).
std::string sanitize(const std::string& name, std::size_t index,
                     char fallback_prefix) {
  if (name.empty()) {
    return fallback_prefix + std::to_string(index);
  }
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  const char first = out.front();
  if (std::isdigit(static_cast<unsigned char>(first)) != 0 || first == 'e' ||
      first == 'E') {
    out.insert(out.begin(), 'v');
  }
  return out;
}

/// Sanitized names with collisions resolved: two distinct model names that
/// sanitize identically (e.g. "a.b" and "a_b") would otherwise alias in
/// the export and break any reader.  Deterministic: suffix the entity's
/// index, then widen until free.
std::vector<std::string> unique_names(const std::vector<std::string>& raw,
                                      char fallback_prefix) {
  std::vector<std::string> names;
  names.reserve(raw.size());
  std::unordered_set<std::string> used;
  used.reserve(raw.size());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    std::string candidate = sanitize(raw[i], i, fallback_prefix);
    while (!used.insert(candidate).second) {
      candidate += "_" + std::to_string(i);
    }
    names.push_back(std::move(candidate));
  }
  return names;
}

void write_number(std::ostream& out, double value) {
  // LP format accepts plain decimal or scientific; print losslessly
  // without paying for a stringstream per number (same idiom as
  // support/csv.cpp).
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                       std::chars_format::general, 17);
  MCS_ASSERT(ec == std::errc{}, "to_chars(double) failed");
  out.write(buf, ptr - buf);
}

void write_expr(std::ostream& out, const LinExpr& expr,
                const std::vector<std::string>& names,
                bool include_constant = false) {
  const LinExpr normal = expr.normalized();
  bool first = true;
  for (const auto& [var, coef] : normal.terms()) {
    if (coef >= 0.0) {
      out << (first ? "" : " + ");
    } else {
      out << (first ? "- " : " - ");
    }
    write_number(out, std::abs(coef));
    out << ' ' << names[var];
    first = false;
  }
  if (include_constant && normal.constant() != 0.0) {
    if (normal.constant() >= 0.0) {
      out << (first ? "" : " + ");
    } else {
      out << (first ? "- " : " - ");
    }
    write_number(out, std::abs(normal.constant()));
    first = false;
  }
  if (first) {
    out << "0";
  }
}

}  // namespace

void write_lp_format(const Model& model, std::ostream& out) {
  std::vector<std::string> raw_vars;
  raw_vars.reserve(model.num_variables());
  for (const Variable& v : model.variables()) {
    raw_vars.push_back(v.name);
  }
  const std::vector<std::string> names = unique_names(raw_vars, 'x');
  std::vector<std::string> raw_rows;
  raw_rows.reserve(model.num_constraints());
  for (const Constraint& c : model.constraints()) {
    raw_rows.push_back(c.name);
  }
  const std::vector<std::string> labels = unique_names(raw_rows, 'c');

  out << (model.objective_sense() == Sense::kMaximize ? "Maximize"
                                                      : "Minimize")
      << "\n obj: ";
  // A constant objective term is legal in the CPLEX LP format and must be
  // part of the expression — a comment would silently drop it on reparse.
  write_expr(out, model.objective(), names, /*include_constant=*/true);
  out << "\nSubject To\n";
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const Constraint& c = model.constraints()[r];
    out << ' ' << labels[r] << ": ";
    write_expr(out, c.lhs, names);
    switch (c.relation) {
      case Relation::kLe:
        out << " <= ";
        break;
      case Relation::kGe:
        out << " >= ";
        break;
      case Relation::kEq:
        out << " = ";
        break;
    }
    write_number(out, c.rhs);
    out << "\n";
  }

  out << "Bounds\n";
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    const Variable& v = model.variables()[i];
    out << ' ';
    if (std::isinf(v.lower) && std::isinf(v.upper)) {
      out << names[i] << " free";
    } else if (std::isinf(v.lower)) {
      out << "-inf <= " << names[i] << " <= ";
      write_number(out, v.upper);
    } else if (std::isinf(v.upper)) {
      write_number(out, v.lower);
      out << " <= " << names[i];
    } else {
      write_number(out, v.lower);
      out << " <= " << names[i] << " <= ";
      write_number(out, v.upper);
    }
    out << "\n";
  }

  bool have_general = false;
  bool have_binary = false;
  for (const Variable& v : model.variables()) {
    have_general |= v.type == VarType::kInteger;
    have_binary |= v.type == VarType::kBinary;
  }
  if (have_general) {
    out << "Generals\n";
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      if (model.variables()[i].type == VarType::kInteger) {
        out << ' ' << names[i] << "\n";
      }
    }
  }
  if (have_binary) {
    out << "Binaries\n";
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      if (model.variables()[i].type == VarType::kBinary) {
        out << ' ' << names[i] << "\n";
      }
    }
  }
  out << "End\n";
}

std::string to_lp_format(const Model& model) {
  std::ostringstream out;
  write_lp_format(model, out);
  return out.str();
}

}  // namespace mcs::lp
