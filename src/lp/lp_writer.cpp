#include "lp/lp_writer.hpp"

#include <cctype>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

namespace mcs::lp {

namespace {

/// LP-format-safe variable names: keep [A-Za-z0-9_], never start with a
/// digit or 'e'/'E' (which the format reads as part of a number).
std::string sanitize(const std::string& name, std::size_t index) {
  if (name.empty()) {
    return "x" + std::to_string(index);
  }
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_');
  }
  const char first = out.front();
  if (std::isdigit(static_cast<unsigned char>(first)) != 0 || first == 'e' ||
      first == 'E') {
    out.insert(out.begin(), 'v');
  }
  return out;
}

void write_number(std::ostream& out, double value) {
  // LP format accepts plain decimal; print losslessly.
  std::ostringstream buf;
  buf.precision(17);
  buf << value;
  out << buf.str();
}

void write_expr(std::ostream& out, const LinExpr& expr,
                const std::vector<std::string>& names) {
  const LinExpr normal = expr.normalized();
  bool first = true;
  for (const auto& [var, coef] : normal.terms()) {
    if (coef >= 0.0) {
      out << (first ? "" : " + ");
    } else {
      out << (first ? "- " : " - ");
    }
    write_number(out, std::abs(coef));
    out << ' ' << names[var];
    first = false;
  }
  if (first) {
    out << "0";
  }
}

}  // namespace

void write_lp_format(const Model& model, std::ostream& out) {
  std::vector<std::string> names;
  names.reserve(model.num_variables());
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    names.push_back(sanitize(model.variables()[i].name, i));
  }

  out << (model.objective_sense() == Sense::kMaximize ? "Maximize"
                                                      : "Minimize")
      << "\n obj: ";
  write_expr(out, model.objective(), names);
  // The LP format has no objective constant; emit it as a comment.
  if (model.objective().normalized().constant() != 0.0) {
    out << "\n\\ objective constant: ";
    write_number(out, model.objective().normalized().constant());
  }
  out << "\nSubject To\n";
  for (std::size_t r = 0; r < model.num_constraints(); ++r) {
    const Constraint& c = model.constraints()[r];
    const std::string label =
        c.name.empty() ? "c" + std::to_string(r) : sanitize(c.name, r);
    out << ' ' << label << ": ";
    write_expr(out, c.lhs, names);
    switch (c.relation) {
      case Relation::kLe:
        out << " <= ";
        break;
      case Relation::kGe:
        out << " >= ";
        break;
      case Relation::kEq:
        out << " = ";
        break;
    }
    write_number(out, c.rhs);
    out << "\n";
  }

  out << "Bounds\n";
  for (std::size_t i = 0; i < model.num_variables(); ++i) {
    const Variable& v = model.variables()[i];
    out << ' ';
    if (std::isinf(v.lower) && std::isinf(v.upper)) {
      out << names[i] << " free";
    } else if (std::isinf(v.lower)) {
      out << "-inf <= " << names[i] << " <= ";
      write_number(out, v.upper);
    } else if (std::isinf(v.upper)) {
      write_number(out, v.lower);
      out << " <= " << names[i];
    } else {
      write_number(out, v.lower);
      out << " <= " << names[i] << " <= ";
      write_number(out, v.upper);
    }
    out << "\n";
  }

  bool have_general = false;
  bool have_binary = false;
  for (const Variable& v : model.variables()) {
    have_general |= v.type == VarType::kInteger;
    have_binary |= v.type == VarType::kBinary;
  }
  if (have_general) {
    out << "Generals\n";
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      if (model.variables()[i].type == VarType::kInteger) {
        out << ' ' << names[i] << "\n";
      }
    }
  }
  if (have_binary) {
    out << "Binaries\n";
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      if (model.variables()[i].type == VarType::kBinary) {
        out << ' ' << names[i] << "\n";
      }
    }
  }
  out << "End\n";
}

std::string to_lp_format(const Model& model) {
  std::ostringstream out;
  write_lp_format(model, out);
  return out.str();
}

}  // namespace mcs::lp
