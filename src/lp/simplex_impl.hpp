// Internal interface between SimplexSolver's public facade and its two
// interchangeable kernels (simplex.cpp: dense tableau; simplex_sparse.cpp:
// revised simplex with a PFI basis).  Not installed; include only from
// lp/*.cpp.
//
// Both kernels share one internal column space so a Basis snapshot taken
// from either kernel indexes columns identically:
//   [0, structural)               shifted / split model-variable columns
//   [structural, structural+rows) one slack per row
//   [structural+rows, total)      one artificial per row
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mcs::lp {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// Cap on the rhs-relative scaling of the phase-1 infeasibility gate:
/// the gate must grow with problem magnitude to absorb summation noise,
/// yet stay well below one tick (the smallest genuine violation) even on
/// models with 1e9-scale right-hand sides.
constexpr double kPhase1ScaleCap = 1e5;

enum class VarStatus : std::uint8_t { kBasic, kAtLower, kAtUpper };

/// Internal column: value x = offset + sign * y where y is the simplex
/// variable with bounds [0, upper] (upper possibly +inf).  Free model
/// variables are split into two internal columns (sign +1 and -1).
struct ColumnMap {
  std::size_t model_var = static_cast<std::size_t>(-1);
  double offset = 0.0;
  double sign = 1.0;
};

/// The model-variable part of the internal column space, identical for both
/// kernels (and therefore for Basis snapshots).
struct ColumnLayout {
  std::vector<ColumnMap> col_map;                  ///< size structural
  std::vector<std::vector<std::size_t>> var_cols;  ///< model var -> columns
  std::vector<double> upper;                       ///< size structural
};

ColumnLayout build_column_layout(const Model& model);

/// Kernel interface.  The facade (SimplexSolver) owns the orchestration
/// that must be kernel-independent — warm/cold bookkeeping, the scheduled
/// warm-refresh hygiene restart, stats and telemetry — and dispatches the
/// actual linear algebra here.
struct SimplexSolver::Impl {
  const Model& model_;
  SimplexOptions opt_;
  std::size_t warm_since_cold_ = 0;
  SimplexStats stats_;

  Impl(const Model& model, const SimplexOptions& options)
      : model_(model), opt_(options) {}
  virtual ~Impl() = default;
  Impl(const Impl&) = delete;
  Impl& operator=(const Impl&) = delete;

  virtual void set_bounds(std::size_t var, double lower, double upper) = 0;
  virtual void set_rhs(std::size_t row, double rhs) = 0;
  /// Discards retained factorization/tableau state (next solve is cold).
  virtual void invalidate() = 0;
  /// True when a warm restart has state to start from.
  virtual bool valid() const = 0;
  virtual std::size_t num_rows() const = 0;
  /// Full cold solve from the current bound/rhs state.
  virtual LpSolution run_cold() = 0;
  /// One warm attempt: load/adopt `parent` when given, dual reoptimize,
  /// close with a primal phase, certify.  Always sets `sol.iterations` to
  /// the pivots consumed; returns true iff `sol` is a certified optimum
  /// (anything else sends the facade to the authoritative cold fallback).
  virtual bool warm_attempt(const Basis* parent, LpSolution& sol) = 0;
  virtual Basis snapshot() const = 0;

  /// Pivot cap for one warm attempt (see SimplexOptions).
  std::size_t warm_budget() const {
    return opt_.warm_iteration_budget != 0 ? opt_.warm_iteration_budget
                                           : 4 * num_rows() + 100;
  }
};

std::unique_ptr<SimplexSolver::Impl> make_dense_kernel(
    const Model& model, const SimplexOptions& options);
std::unique_ptr<SimplexSolver::Impl> make_sparse_kernel(
    const Model& model, const SimplexOptions& options);

}  // namespace mcs::lp
