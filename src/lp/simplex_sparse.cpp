// Sparse revised-simplex kernel: CSC constraint matrix, product-form-
// inverse (eta-file) basis with periodic refactorization, Devex pricing
// with partial pricing (Bland fallback), and a bound-flipping dual ratio
// test.  Implements the same SimplexSolver::Impl contract as the dense
// tableau kernel in simplex.cpp; see simplex_impl.hpp for the split.
//
// Per-pivot cost is O(eta entries + matrix nnz) against the dense kernel's
// O(rows * total_cols): the delay MILPs are ~1% dense, so the revised
// update wins by orders of magnitude on the branch & bound hot path.
//
// Numerics: the eta file accumulates round-off, so the kernel (a) rebuilds
// the factorization on an eta-count / eta-entry budget, (b) recomputes
// xb / reduced costs wholesale after every rebuild, (c) certifies cold
// optima against the pristine model data (the dense kernel only certifies
// warm results), and (d) on an uncertifiable cold result replays its bound
// state into a transient dense-tableau solve, whose answer is
// authoritative.
#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "lp/basis.hpp"
#include "lp/simplex.hpp"
#include "lp/simplex_impl.hpp"
#include "lp/sparse_matrix.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::lp {
namespace {

/// Floor below which a pivot element is unusable regardless of tolerances.
constexpr double kTinyPivot = 1e-12;
/// Devex weights above this trigger a reference-framework reset.
constexpr double kDevexResetThreshold = 1e7;
/// Relative acceptance floor for pivots chosen during refactorization.
constexpr double kRefactorPivotRel = 1e-9;

struct SparseKernel final : SimplexSolver::Impl {
  // Static data (built once from the model).
  std::size_t rows_ = 0;
  std::size_t structural_ = 0;
  std::size_t cols_ = 0;             // structural + one slack per row
  std::size_t total_cols_ = 0;       // cols_ + one artificial per row
  std::size_t first_artificial_ = 0;

  std::vector<ColumnMap> col_map_;
  std::vector<std::vector<std::size_t>> var_cols_;
  SparseMatrix mat_;                 // rows_ x cols_, oriented (coef * sign)
  std::vector<double> base_rhs_;
  std::vector<double> slack_coef_;   // +1 (<=), -1 (>=), 0 (=)
  std::vector<double> cost_;
  std::vector<double> phase1_cost_;
  double cost_scale_ = 1.0;

  // Bound state (shadows the model; mutated by set_bounds).
  std::vector<double> upper_;        // per internal column
  std::vector<double> eff_rhs_;      // base_rhs - A * offsets, unpivoted

  // Factorization state.
  bool factor_valid_ = false;
  bool last_refactor_changed_basis_ = false;
  EtaFile eta_;
  std::size_t factor_etas_ = 0;      // eta count right after refactorize
  std::size_t factor_entries_ = 0;   // eta entries right after refactorize
  std::vector<double> art_sign_;     // per row, set at cold reset
  std::vector<std::size_t> basis_;
  std::vector<VarStatus> status_;
  std::vector<double> xb_;
  std::vector<double> dj_;
  /// dj_ is maintained incrementally across pivots; this says it still
  /// matches (basis_, cost_) so a same-basis warm attempt can skip the
  /// BTRAN + full pricing pass of compute_dj.  Any basis rebuild or cost
  /// switch clears it; the optimality certificates backstop drift.
  bool dj_valid_ = false;
  std::vector<double> devex_w_;
  double devex_max_ = 1.0;
  std::size_t pricing_cursor_ = 0;
  double rhs_scale_ = 1.0;
  const std::vector<double>* active_cost_ = nullptr;
  std::vector<std::size_t> live_cols_;

  // Scratch (sized rows_ / total_cols_; reused to avoid allocation).
  std::vector<double> work_;
  std::vector<double> rho_;
  std::vector<double> y_;
  std::vector<double> alpha_row_;    // size total_cols_
  struct Cand {
    double ratio;
    std::size_t j;
    double mag;
  };
  std::vector<Cand> cands_;          // dual ratio-test breakpoints
  std::vector<std::size_t> flips_;   // dual long-step bound flips
  std::vector<std::size_t> rf_order_;
  std::vector<std::size_t> rf_structural_rows_;
  std::vector<char> rf_placed_;
  std::vector<std::size_t> rf_new_basis_;
  std::vector<char> rf_in_basis_;    // refactorize scratch

  SparseKernel(const Model& model, const SimplexOptions& options)
      : Impl(model, options) {
    build_static();
  }

  void build_static();
  void recompute_eff_rhs();
  void reset_cold();
  bool refactorize();
  bool maybe_refactor(bool force);
  void compute_xb();
  void compute_dj();
  void rebuild_live_cols();
  void scatter_internal_column(std::size_t c, std::vector<double>& out) const;
  double current_internal_objective() const;
  bool primal_feasible() const;
  std::size_t choose_entering(bool bland);
  void fill_alpha_row();             // from rho_, into alpha_row_
  bool pivot_update(std::size_t p, std::size_t q,
                    const std::vector<double>& alpha, double entering_value,
                    VarStatus leaving_status, bool have_alpha_row,
                    bool use_devex);
  SolveStatus p_iterate(bool phase_one, std::size_t& iterations);
  SolveStatus dual_reoptimize(std::size_t& iterations);
  bool drive_out_artificials();
  void freeze_artificials();
  LpSolution extract_solution(SolveStatus status,
                              std::size_t iterations) const;
  LpSolution run_cold_once();
  LpSolution dense_fallback_cold();
  bool same_basis(const Basis& b) const;
  void adopt_statuses(const Basis& b);
  bool load_snapshot(const Basis& b);
  bool certify(const std::vector<double>& values) const;
  bool certify_dual();

  // SimplexSolver::Impl interface.
  void set_bounds(std::size_t var, double lower, double upper) override;
  void set_rhs(std::size_t row, double rhs) override;
  void invalidate() override { factor_valid_ = false; }
  bool valid() const override { return factor_valid_; }
  std::size_t num_rows() const override { return rows_; }
  LpSolution run_cold() override;
  bool warm_attempt(const Basis* parent, LpSolution& sol) override;
  Basis snapshot() const override;
};

void SparseKernel::build_static() {
  ColumnLayout layout = build_column_layout(model_);
  col_map_ = std::move(layout.col_map);
  var_cols_ = std::move(layout.var_cols);
  upper_ = std::move(layout.upper);
  structural_ = col_map_.size();
  rows_ = model_.num_constraints();
  cols_ = structural_ + rows_;
  first_artificial_ = cols_;
  total_cols_ = cols_ + rows_;

  SparseMatrix::Builder builder(rows_, cols_);
  base_rhs_.assign(rows_, 0.0);
  slack_coef_.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const Constraint& c = model_.constraints()[r];
    for (const auto& [var, coef] : c.lhs.terms()) {
      for (const std::size_t col : var_cols_[var]) {
        builder.add(r, col, coef * col_map_[col].sign);
      }
    }
    base_rhs_[r] = c.rhs;
    switch (c.relation) {
      case Relation::kLe:
        builder.add(r, structural_ + r, 1.0);
        slack_coef_[r] = 1.0;
        break;
      case Relation::kGe:
        builder.add(r, structural_ + r, -1.0);
        slack_coef_[r] = -1.0;
        break;
      case Relation::kEq:
        slack_coef_[r] = 0.0;
        break;
    }
  }
  mat_ = std::move(builder).build();

  upper_.resize(total_cols_, kInfinity);
  for (std::size_t r = 0; r < rows_; ++r) {
    upper_[structural_ + r] = slack_coef_[r] == 0.0 ? 0.0 : kInfinity;
    upper_[first_artificial_ + r] = 0.0;  // reset_cold opens what it needs
  }

  cost_scale_ = model_.objective_sense() == Sense::kMinimize ? 1.0 : -1.0;
  cost_.assign(total_cols_, 0.0);
  for (const auto& [var, coef] : model_.objective().terms()) {
    for (const std::size_t col : var_cols_[var]) {
      cost_[col] += cost_scale_ * coef * col_map_[col].sign;
    }
  }
  phase1_cost_.assign(total_cols_, 0.0);
  for (std::size_t c = first_artificial_; c < total_cols_; ++c) {
    phase1_cost_[c] = 1.0;
  }

  art_sign_.assign(rows_, 1.0);
  recompute_eff_rhs();
  alpha_row_.assign(total_cols_, 0.0);
  work_.assign(rows_, 0.0);
  rho_.assign(rows_, 0.0);
  y_.assign(rows_, 0.0);
}

void SparseKernel::recompute_eff_rhs() {
  eff_rhs_ = base_rhs_;
  for (std::size_t c = 0; c < structural_; ++c) {
    const double off = col_map_[c].offset;
    if (off != 0.0) {
      // coef*x contributes coef*offset = a' * sign * offset to the lhs.
      mat_.axpy_column(c, -col_map_[c].sign * off, eff_rhs_.data());
    }
  }
}

void SparseKernel::scatter_internal_column(std::size_t c,
                                           std::vector<double>& out) const {
  out.assign(rows_, 0.0);
  if (c < cols_) {
    mat_.scatter_column(c, out.data());
  } else {
    const std::size_t r = c - first_artificial_;
    out[r] = art_sign_[r];
  }
}

void SparseKernel::reset_cold() {
  recompute_eff_rhs();
  status_.assign(total_cols_, VarStatus::kAtLower);
  // dj_/devex weights must be sized before drive_out_artificials' pivots
  // touch them: a solve can reach that path without ever pricing (no
  // phase 1 needed but a zero-valued basic artificial on an = row).
  dj_.assign(total_cols_, 0.0);
  devex_w_.assign(total_cols_, 1.0);
  devex_max_ = 1.0;
  basis_.assign(rows_, npos);
  art_sign_.assign(rows_, 1.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double b = eff_rhs_[r];
    const double s = slack_coef_[r];
    const std::size_t art = first_artificial_ + r;
    // Slack basic iff it can carry the row feasibly (b/s >= 0); otherwise
    // an artificial oriented to the rhs sign does, so its value |b| >= 0.
    if ((s == 1.0 && b >= 0.0) || (s == -1.0 && b <= 0.0)) {
      basis_[r] = structural_ + r;
      upper_[art] = 0.0;
    } else {
      basis_[r] = art;
      art_sign_[r] = b >= 0.0 ? 1.0 : -1.0;
      upper_[art] = kInfinity;
    }
    status_[basis_[r]] = VarStatus::kBasic;
  }
  const bool ok = refactorize();
  MCS_ASSERT(ok, "cold reset: unit basis refactorization cannot fail");
  static_cast<void>(ok);
  compute_xb();
  rhs_scale_ = 1.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    rhs_scale_ = std::max(rhs_scale_, 1.0 + std::abs(xb_[r]));
  }
  pricing_cursor_ = 0;
}

bool SparseKernel::refactorize() {
  ++stats_.refactorizations;
  eta_.reset(rows_);
  last_refactor_changed_basis_ = false;
  dj_valid_ = false;

  // Process basis columns cheapest-first: artificials and slacks are (near)
  // unit vectors whose etas are trivial; structural columns go by ascending
  // nnz so early etas stay thin and later FTRANs through them stay cheap.
  std::vector<std::size_t>& order = rf_order_;
  order.clear();
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] >= first_artificial_) order.push_back(r);
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t c = basis_[r];
    if (c >= structural_ && c < first_artificial_) order.push_back(r);
  }
  std::vector<std::size_t>& structural_rows = rf_structural_rows_;
  structural_rows.clear();
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] < structural_) structural_rows.push_back(r);
  }
  std::stable_sort(structural_rows.begin(), structural_rows.end(),
                   [&](std::size_t a, std::size_t b) {
                     return mat_.column_nnz(basis_[a]) <
                            mat_.column_nnz(basis_[b]);
                   });
  order.insert(order.end(), structural_rows.begin(), structural_rows.end());

  rf_placed_.assign(rows_, 0);
  std::vector<char>& placed = rf_placed_;
  rf_new_basis_.assign(rows_, npos);
  std::vector<std::size_t>& new_basis = rf_new_basis_;
  const std::size_t entries_before = eta_.eta_entries();
  for (const std::size_t r : order) {
    const std::size_t c = basis_[r];
    work_.assign(rows_, 0.0);
    double colmax = 1.0;
    if (c < cols_) {
      colmax = mat_.scatter_column(c, work_.data());
    } else {
      work_[c - first_artificial_] = art_sign_[c - first_artificial_];
    }
    eta_.ftran(work_.data());
    std::size_t best_p = npos;
    double best_v = 0.0;
    for (std::size_t p = 0; p < rows_; ++p) {
      if (placed[p]) continue;
      const double v = std::abs(work_[p]);
      if (v > best_v) {
        best_v = v;
        best_p = p;
      }
    }
    if (best_p == npos || best_v <= kRefactorPivotRel * (1.0 + colmax)) {
      last_refactor_changed_basis_ = true;  // column dropped from the basis
      continue;
    }
    eta_.append(work_.data(), best_p, 0.0);
    placed[best_p] = true;
    new_basis[best_p] = c;
    if (best_p != r) last_refactor_changed_basis_ = true;
  }
  // Rows left without a pivot get their artificial back (basic at zero
  // bounds, so the dual phase repairs any residual value).
  for (std::size_t p = 0; p < rows_; ++p) {
    if (placed[p]) continue;
    work_.assign(rows_, 0.0);
    work_[p] = art_sign_[p];
    eta_.ftran(work_.data());
    if (std::abs(work_[p]) <= kRefactorPivotRel) {
      factor_valid_ = false;
      return false;
    }
    eta_.append(work_.data(), p, 0.0);
    new_basis[p] = first_artificial_ + p;
    last_refactor_changed_basis_ = true;
  }
  stats_.eta_nnz += eta_.eta_entries() - entries_before;
  factor_etas_ = eta_.eta_count();
  factor_entries_ = eta_.eta_entries();

  std::swap(basis_, new_basis);
  rf_in_basis_.assign(total_cols_, 0);
  std::vector<char>& in_basis = rf_in_basis_;
  for (std::size_t r = 0; r < rows_; ++r) {
    in_basis[basis_[r]] = 1;
  }
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (in_basis[c]) {
      status_[c] = VarStatus::kBasic;
    } else if (status_[c] == VarStatus::kBasic) {
      status_[c] = VarStatus::kAtLower;
    }
  }
  factor_valid_ = true;
  return true;
}

bool SparseKernel::maybe_refactor(bool force) {
  // Both caps measure growth SINCE the last factorization: refactorize()
  // itself seeds the file with ~one eta per non-unit basis column, so a
  // total-count trigger would re-fire immediately on any basis with more
  // than count_cap structural columns and thrash.
  const std::size_t count_cap = std::min(
      opt_.refactor_period, std::max<std::size_t>(32, rows_ / 2));
  const std::size_t entry_cap =
      std::max<std::size_t>(1024, 4 * (mat_.nnz() + rows_));
  if (force || eta_.eta_count() - factor_etas_ >= count_cap ||
      eta_.eta_entries() - factor_entries_ >= entry_cap) {
    refactorize();
    return true;
  }
  return false;
}

void SparseKernel::compute_xb() {
  work_ = eff_rhs_;
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] != VarStatus::kAtUpper) continue;
    MCS_ASSERT(std::isfinite(upper_[c]), "at-upper with infinite bound");
    if (upper_[c] == 0.0) continue;
    if (c < cols_) {
      mat_.axpy_column(c, -upper_[c], work_.data());
    } else {
      work_[c - first_artificial_] -=
          art_sign_[c - first_artificial_] * upper_[c];
    }
  }
  eta_.ftran(work_.data());
  xb_ = work_;
}

void SparseKernel::compute_dj() {
  const std::vector<double>& c = *active_cost_;
  y_.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    y_[r] = c[basis_[r]];
  }
  eta_.btran(y_.data());
  dj_.assign(total_cols_, 0.0);
  for (std::size_t j = 0; j < cols_; ++j) {
    dj_[j] = c[j] - mat_.dot_column(j, y_.data());
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::size_t j = first_artificial_ + r;
    dj_[j] = c[j] - y_[r] * art_sign_[r];
  }
  dj_valid_ = active_cost_ == &cost_;
}

void SparseKernel::rebuild_live_cols() {
  live_cols_.clear();
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (upper_[j] > 0.0) {
      live_cols_.push_back(j);
    }
  }
  stats_.fixed_cols_skipped += total_cols_ - live_cols_.size();
}

double SparseKernel::current_internal_objective() const {
  const std::vector<double>& c = *active_cost_;
  double obj = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    obj += c[basis_[r]] * xb_[r];
  }
  for (std::size_t j = 0; j < total_cols_; ++j) {
    if (status_[j] == VarStatus::kAtUpper) {
      obj += c[j] * upper_[j];
    }
  }
  return obj;
}

bool SparseKernel::primal_feasible() const {
  for (std::size_t r = 0; r < rows_; ++r) {
    const double x = xb_[r];
    const double ub = upper_[basis_[r]];
    const double tol = opt_.feasibility_tol *
                       (1.0 + std::abs(x) + (std::isfinite(ub) ? ub : 0.0));
    if (-x > tol) return false;
    if (std::isfinite(ub) && x - ub > tol) return false;
  }
  return true;
}

/// Devex pricing over a rotating partial-pricing window of the live list;
/// Bland mode scans the whole list ascending and takes the first violation.
std::size_t SparseKernel::choose_entering(bool bland) {
  if (bland) {
    for (const std::size_t j : live_cols_) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double violation =
          status_[j] == VarStatus::kAtLower ? -dj_[j] : dj_[j];
      if (violation > opt_.reduced_cost_tol) return j;
    }
    return npos;
  }
  const std::size_t n = live_cols_.size();
  if (n == 0) return npos;
  // Partial pricing pays only when the live list is large: on small models
  // a narrow window picks weak entering columns, which costs extra pivots
  // AND lands on worse vertices for the MILP branching above.  The floor
  // makes pricing exhaustive below ~2k columns.
  const std::size_t seg = std::max<std::size_t>(2048, n / 8);
  std::size_t idx = pricing_cursor_ % n;
  std::size_t scanned = 0;
  while (scanned < n) {
    std::size_t best = npos;
    double best_score = 0.0;
    const std::size_t chunk = std::min(seg, n - scanned);
    for (std::size_t k = 0; k < chunk; ++k, ++scanned) {
      const std::size_t j = live_cols_[idx];
      if (++idx >= n) idx = 0;
      if (status_[j] == VarStatus::kBasic) continue;
      const double violation =
          status_[j] == VarStatus::kAtLower ? -dj_[j] : dj_[j];
      if (violation > opt_.reduced_cost_tol) {
        const double score = violation * violation / devex_w_[j];
        if (score > best_score) {
          best_score = score;
          best = j;
        }
      }
    }
    if (best != npos) {
      pricing_cursor_ = idx;
      return best;
    }
  }
  return npos;
}

/// alpha_row_[j] = (B^-1 A_j)[p] for every internal column, given
/// rho_ = BTRAN(e_p).  One sequential CSR pass over the rows where rho is
/// nonzero (a column-major gather here costs a cache line per column) plus
/// the implicit artificial block.
void SparseKernel::fill_alpha_row() {
  std::fill_n(alpha_row_.data(), cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double rr = rho_[r];
    if (rr != 0.0) {
      mat_.add_row_scaled(r, rr, alpha_row_.data());
    }
    alpha_row_[first_artificial_ + r] = rr * art_sign_[r];
  }
}

/// Executes one basis change: entering column q (FTRANed into `alpha`)
/// replaces the variable basic in row p.  Updates xb, appends the eta,
/// and sweeps the pivot row once to update reduced costs and Devex
/// weights.  Returns false — leaving all state untouched — when the pivot
/// element is numerically unusable (caller refactorizes and retries).
bool SparseKernel::pivot_update(std::size_t p, std::size_t q,
                                const std::vector<double>& alpha,
                                double entering_value,
                                VarStatus leaving_status,
                                bool have_alpha_row, bool use_devex) {
  if (std::abs(alpha[p]) <= kTinyPivot) {
    return false;
  }
  const std::size_t leaving = basis_[p];
  const double dir = status_[q] == VarStatus::kAtLower ? 1.0 : -1.0;
  const double step = std::abs(
      entering_value - (status_[q] == VarStatus::kAtLower ? 0.0 : upper_[q]));
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r != p && alpha[r] != 0.0) {
      xb_[r] -= dir * step * alpha[r];
    }
  }
  xb_[p] = entering_value;

  // Pivot row under the *old* basis (the eta is appended afterwards).
  if (!have_alpha_row) {
    rho_.assign(rows_, 0.0);
    rho_[p] = 1.0;
    eta_.btran(rho_.data());
    fill_alpha_row();
  }
  const double dq = dj_[q];
  const double inv_piv = 1.0 / alpha[p];
  const double wq = use_devex ? devex_w_[q] : 0.0;
  for (std::size_t j = 0; j < total_cols_; ++j) {
    const double ar = alpha_row_[j];
    if (ar == 0.0) continue;
    const double ratio = ar * inv_piv;
    if (dq != 0.0) {
      dj_[j] -= dq * ratio;
    }
    if (use_devex && j != q && status_[j] != VarStatus::kBasic) {
      const double cand = ratio * ratio * wq;
      if (cand > devex_w_[j]) {
        devex_w_[j] = cand;
        if (cand > devex_max_) devex_max_ = cand;
      }
    }
  }
  dj_[q] = 0.0;

  const std::size_t entries_before = eta_.eta_entries();
  eta_.append(alpha.data(), p, 0.0);
  stats_.eta_nnz += eta_.eta_entries() - entries_before;

  basis_[p] = q;
  status_[q] = VarStatus::kBasic;
  status_[leaving] = leaving_status;
  if (leaving_status == VarStatus::kAtUpper &&
      !std::isfinite(upper_[leaving])) {
    status_[leaving] = VarStatus::kAtLower;
  }
  if (use_devex) {
    const double wl = std::max(wq * inv_piv * inv_piv, 1.0);
    devex_w_[leaving] = wl;
    if (wl > devex_max_) devex_max_ = wl;
    if (devex_max_ > kDevexResetThreshold) {
      devex_w_.assign(total_cols_, 1.0);
      devex_max_ = 1.0;
      ++stats_.devex_resets;
    }
  }
  return true;
}

SolveStatus SparseKernel::p_iterate(bool phase_one, std::size_t& iterations) {
  rebuild_live_cols();
  devex_w_.assign(total_cols_, 1.0);
  devex_max_ = 1.0;
  std::size_t stall_retries = 0;
  for (;;) {
    if (iterations >= opt_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    const bool bland = iterations >= opt_.bland_threshold;
    if (maybe_refactor(false)) {
      if (!factor_valid_) return SolveStatus::kIterationLimit;
      compute_dj();
      compute_xb();
      if (last_refactor_changed_basis_ && !primal_feasible()) {
        // A repair pivot displaced a basic column; the primal phase cannot
        // restore feasibility — let the caller restart authoritatively.
        return SolveStatus::kIterationLimit;
      }
    }
    const std::size_t q = choose_entering(bland);
    if (q == npos) {
      return SolveStatus::kOptimal;
    }
    ++iterations;

    scatter_internal_column(q, work_);
    eta_.ftran(work_.data());

    const double dir = status_[q] == VarStatus::kAtLower ? 1.0 : -1.0;
    double best_t = std::isfinite(upper_[q]) ? upper_[q] : kInfinity;
    std::size_t leave_row = npos;
    VarStatus leave_status = VarStatus::kAtLower;
    double best_pivot_mag = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double a = work_[r];
      const double g = dir * a;
      if (g > opt_.pivot_tol) {
        const double t = std::max(0.0, xb_[r]) / g;
        const bool better =
            t < best_t - 1e-12 ||
            (t < best_t + 1e-12 && leave_row != npos &&
             (bland ? basis_[r] < basis_[leave_row]
                    : std::abs(a) > best_pivot_mag));
        if (t < best_t - 1e-12 || better) {
          best_t = std::min(best_t, t);
          leave_row = r;
          leave_status = VarStatus::kAtLower;
          best_pivot_mag = std::abs(a);
        }
      } else if (g < -opt_.pivot_tol && std::isfinite(upper_[basis_[r]])) {
        const double room = upper_[basis_[r]] - xb_[r];
        const double t = std::max(0.0, room) / (-g);
        const bool better =
            t < best_t - 1e-12 ||
            (t < best_t + 1e-12 && leave_row != npos &&
             (bland ? basis_[r] < basis_[leave_row]
                    : std::abs(a) > best_pivot_mag));
        if (t < best_t - 1e-12 || better) {
          best_t = std::min(best_t, t);
          leave_row = r;
          leave_status = VarStatus::kAtUpper;
          best_pivot_mag = std::abs(a);
        }
      }
    }

    if (!std::isfinite(best_t)) {
      return phase_one ? SolveStatus::kIterationLimit  // cannot happen
                       : SolveStatus::kUnbounded;
    }

    if (leave_row == npos) {
      // Bound flip: entering variable traverses to its other bound.
      MCS_ASSERT(std::isfinite(upper_[q]), "bound flip without upper bound");
      for (std::size_t r = 0; r < rows_; ++r) {
        if (work_[r] != 0.0) {
          xb_[r] -= dir * best_t * work_[r];
        }
      }
      status_[q] = status_[q] == VarStatus::kAtLower ? VarStatus::kAtUpper
                                                     : VarStatus::kAtLower;
      ++stats_.bound_flips;
      continue;
    }

    const double entering_start =
        status_[q] == VarStatus::kAtLower ? 0.0 : upper_[q];
    const double entering_value = entering_start + dir * best_t;
    if (!pivot_update(leave_row, q, work_, entering_value, leave_status,
                      /*have_alpha_row=*/false, /*use_devex=*/!bland)) {
      if (++stall_retries > 2) return SolveStatus::kIterationLimit;
      maybe_refactor(true);
      if (!factor_valid_) return SolveStatus::kIterationLimit;
      compute_dj();
      compute_xb();
      continue;
    }
    stall_retries = 0;
  }
}

/// Dual simplex with a bound-flipping (long-step) ratio test.  Same entry
/// contract as the dense kernel's dual_reoptimize: requires fresh xb_/dj_,
/// returns kOptimal on primal feasibility, kInfeasible on an (uncertified)
/// infeasibility signal, kIterationLimit when the caller should go cold.
SolveStatus SparseKernel::dual_reoptimize(std::size_t& iterations) {
  rebuild_live_cols();
  std::size_t stall_retries = 0;
  for (;;) {
    if (iterations >= opt_.max_iterations) {
      return SolveStatus::kIterationLimit;
    }
    const bool bland = iterations >= opt_.bland_threshold;
    if (maybe_refactor(false)) {
      if (!factor_valid_) return SolveStatus::kIterationLimit;
      compute_dj();
      compute_xb();
    }

    // Most-violated basic variable leaves (scale-relative threshold, same
    // rationale as the dense kernel).
    std::size_t row = npos;
    double worst = 0.0;
    double row_tol = 0.0;
    bool below = true;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double x = xb_[r];
      const double ub = upper_[basis_[r]];
      const double scale = 1.0 + std::abs(x) + (std::isfinite(ub) ? ub : 0.0);
      const double tol = opt_.feasibility_tol * scale;
      if (-x > tol && -x - tol > worst) {
        worst = -x - tol;
        row = r;
        row_tol = tol;
        below = true;
      }
      if (std::isfinite(ub) && x - ub > tol && x - ub - tol > worst) {
        worst = x - ub - tol;
        row = r;
        row_tol = tol;
        below = false;
      }
    }
    if (row == npos) {
      return SolveStatus::kOptimal;
    }

    rho_.assign(rows_, 0.0);
    rho_[row] = 1.0;
    eta_.btran(rho_.data());
    fill_alpha_row();
    double row_mag = 0.0;
    for (std::size_t j = 0; j < total_cols_; ++j) {
      row_mag = std::max(row_mag, std::abs(alpha_row_[j]));
    }
    const double alpha_floor = std::max(opt_.pivot_tol, 1e-9 * row_mag);

    // Candidate entering columns: correct sign to move the leaving
    // variable back to its violated bound while preserving dual
    // feasibility up to each candidate's breakpoint |dj| / |alpha|.
    std::vector<Cand>& cands = cands_;
    cands.clear();
    for (const std::size_t j : live_cols_) {
      if (status_[j] == VarStatus::kBasic) continue;
      const double alpha = alpha_row_[j];
      if (std::abs(alpha) <= alpha_floor) continue;
      const bool at_lower = status_[j] == VarStatus::kAtLower;
      const bool candidate =
          below ? (at_lower ? alpha < 0.0 : alpha > 0.0)
                : (at_lower ? alpha > 0.0 : alpha < 0.0);
      if (!candidate) continue;
      cands.push_back(
          {std::abs(dj_[j]) / std::abs(alpha), j, std::abs(alpha)});
      if (bland) break;  // smallest candidate index, no long step
    }
    if (cands.empty()) {
      // As in the dense kernel this can be a genuine Farkas row or an
      // artifact of the pivot floor — warm callers never trust it.
      return SolveStatus::kInfeasible;
    }

    std::size_t chosen = npos;
    if (bland) {
      chosen = cands.front().j;
    } else {
      // Bound-flipping ratio test: walk breakpoints in increasing ratio;
      // while flipping a boxed candidate bound-to-bound still leaves the
      // leaving variable violated, take the flip (no pivot, no eta) and
      // keep going.  The first candidate that would overshoot pivots.
      std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
        if (a.ratio != b.ratio) return a.ratio < b.ratio;
        return a.j < b.j;
      });
      const double target = below ? 0.0 : upper_[basis_[row]];
      double residual = std::abs(xb_[row] - target);
      std::vector<std::size_t>& flips = flips_;
      flips.clear();
      for (const Cand& cand : cands) {
        const double u = upper_[cand.j];
        if (std::isfinite(u) && residual - cand.mag * u > row_tol) {
          flips.push_back(cand.j);
          residual -= cand.mag * u;
          continue;
        }
        chosen = cand.j;
        break;
      }
      if (chosen == npos) {
        // Flipping everything still leaves the row violated: infeasibility
        // signal.  The flips are NOT applied — state stays consistent for
        // the caller's cold fallback.
        return SolveStatus::kInfeasible;
      }
      if (!flips.empty()) {
        work_.assign(rows_, 0.0);
        for (const std::size_t j : flips) {
          const double shift = status_[j] == VarStatus::kAtLower
                                   ? upper_[j]
                                   : -upper_[j];
          mat_.axpy_column(j, shift, work_.data());
          status_[j] = status_[j] == VarStatus::kAtLower
                           ? VarStatus::kAtUpper
                           : VarStatus::kAtLower;
        }
        eta_.ftran(work_.data());
        for (std::size_t r = 0; r < rows_; ++r) {
          xb_[r] -= work_[r];
        }
        stats_.bound_flips += flips.size();
      }
    }

    ++iterations;
    const double target = below ? 0.0 : upper_[basis_[row]];
    const double alpha = alpha_row_[chosen];
    const double dir = status_[chosen] == VarStatus::kAtLower ? 1.0 : -1.0;
    // Post-flip noise can push the step marginally negative; clamp (the
    // dense kernel asserts instead — it never flips before stepping).
    const double t = std::max(0.0, (xb_[row] - target) / (alpha * dir));
    const double start =
        status_[chosen] == VarStatus::kAtLower ? 0.0 : upper_[chosen];

    scatter_internal_column(chosen, work_);
    eta_.ftran(work_.data());
    if (!pivot_update(row, chosen, work_, start + dir * t,
                      below ? VarStatus::kAtLower : VarStatus::kAtUpper,
                      /*have_alpha_row=*/true, /*use_devex=*/false)) {
      if (++stall_retries > 2) return SolveStatus::kIterationLimit;
      maybe_refactor(true);
      if (!factor_valid_) return SolveStatus::kIterationLimit;
      compute_dj();
      compute_xb();
      continue;
    }
    stall_retries = 0;
  }
}

bool SparseKernel::drive_out_artificials() {
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] < first_artificial_) continue;
    if (std::abs(xb_[r]) > opt_.feasibility_tol) {
      return false;
    }
    rho_.assign(rows_, 0.0);
    rho_[r] = 1.0;
    eta_.btran(rho_.data());
    fill_alpha_row();
    std::size_t replacement = npos;
    for (std::size_t j = 0; j < first_artificial_; ++j) {
      if (status_[j] == VarStatus::kBasic) continue;
      if (upper_[j] <= 0.0) continue;
      if (std::abs(alpha_row_[j]) > opt_.pivot_tol) {
        replacement = j;
        break;
      }
    }
    if (replacement == npos) {
      continue;  // redundant row; artificial stays basic at zero
    }
    const double entering_value =
        status_[replacement] == VarStatus::kAtLower ? 0.0
                                                    : upper_[replacement];
    scatter_internal_column(replacement, work_);
    eta_.ftran(work_.data());
    // Degenerate pivot (step 0); a tiny FTRANed pivot just keeps the
    // artificial basic — harmless, same as the dense "redundant row" case.
    pivot_update(r, replacement, work_, entering_value, VarStatus::kAtLower,
                 /*have_alpha_row=*/true, /*use_devex=*/false);
  }
  freeze_artificials();
  return true;
}

void SparseKernel::freeze_artificials() {
  for (std::size_t c = first_artificial_; c < total_cols_; ++c) {
    if (status_[c] != VarStatus::kBasic) {
      status_[c] = VarStatus::kAtLower;
    }
    upper_[c] = 0.0;
  }
}

LpSolution SparseKernel::extract_solution(SolveStatus status,
                                          std::size_t iterations) const {
  LpSolution sol;
  sol.status = status;
  sol.iterations = iterations;
  if (status != SolveStatus::kOptimal) {
    return sol;
  }
  std::vector<double> internal(total_cols_, 0.0);
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kAtUpper) {
      internal[c] = upper_[c];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    internal[basis_[r]] = xb_[r];
  }
  sol.values.assign(model_.num_variables(), 0.0);
  for (std::size_t c = 0; c < col_map_.size(); ++c) {
    const ColumnMap& cm = col_map_[c];
    if (cm.sign > 0.0) {
      sol.values[cm.model_var] += cm.offset + internal[c];
    } else {
      sol.values[cm.model_var] += cm.offset - internal[c];
    }
  }
  sol.objective = model_.evaluate(model_.objective(), sol.values);
  return sol;
}

LpSolution SparseKernel::run_cold_once() {
  reset_cold();
  std::size_t iterations = 0;

  bool need_phase1 = false;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] >= first_artificial_ && xb_[r] > opt_.feasibility_tol) {
      need_phase1 = true;
      break;
    }
  }
  if (need_phase1) {
    active_cost_ = &phase1_cost_;
    compute_dj();
    SolveStatus p1 = p_iterate(/*phase_one=*/true, iterations);
    if (p1 == SolveStatus::kIterationLimit) {
      return extract_solution(SolveStatus::kIterationLimit, iterations);
    }
    const double gate = opt_.feasibility_tol * 10.0 *
                        std::min(rhs_scale_, kPhase1ScaleCap);
    if (current_internal_objective() > gate) {
      // Refactor-confirm before declaring infeasibility: eta round-off can
      // leave phantom artificial residue that a fresh factorization (and a
      // few more pivots) clears.
      maybe_refactor(true);
      if (!factor_valid_) {
        return extract_solution(SolveStatus::kIterationLimit, iterations);
      }
      compute_dj();
      compute_xb();
      p1 = p_iterate(/*phase_one=*/true, iterations);
      if (p1 == SolveStatus::kIterationLimit) {
        return extract_solution(SolveStatus::kIterationLimit, iterations);
      }
      if (current_internal_objective() > gate) {
        freeze_artificials();
        return extract_solution(SolveStatus::kInfeasible, iterations);
      }
    }
  }
  if (!drive_out_artificials()) {
    return extract_solution(SolveStatus::kInfeasible, iterations);
  }

  active_cost_ = &cost_;
  compute_dj();
  const SolveStatus p2 = p_iterate(/*phase_one=*/false, iterations);
  return extract_solution(p2, iterations);
}

/// Authoritative escape hatch for cold solves the eta file cannot certify:
/// replay the current bound/rhs state into a one-shot dense-tableau kernel
/// and return its answer.  The factorization is dropped so the next solve
/// starts cold (the facade's warm path degrades gracefully on an empty
/// snapshot).
LpSolution SparseKernel::dense_fallback_cold() {
  SimplexOptions dense_opt = opt_;
  dense_opt.kernel = SimplexKernel::kDense;
  auto dense = make_dense_kernel(model_, dense_opt);
  for (std::size_t v = 0; v < var_cols_.size(); ++v) {
    if (var_cols_[v].size() != 1) continue;
    const std::size_t c = var_cols_[v].front();
    if (col_map_[c].sign <= 0.0) continue;
    dense->set_bounds(v, col_map_[c].offset,
                      std::isfinite(upper_[c]) ? col_map_[c].offset + upper_[c]
                                               : kInfinity);
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    dense->set_rhs(r, base_rhs_[r]);
  }
  LpSolution sol = dense->run_cold();
  factor_valid_ = false;
  return sol;
}

LpSolution SparseKernel::run_cold() {
  LpSolution sol = run_cold_once();
  if (sol.status == SolveStatus::kOptimal) {
    if (certify(sol.values) && certify_dual()) {
      return sol;
    }
    // One refactor-and-repolish attempt before the dense fallback.
    maybe_refactor(true);
    if (factor_valid_) {
      compute_dj();
      compute_xb();
      std::size_t iterations = sol.iterations;
      const SolveStatus d = dual_reoptimize(iterations);
      SolveStatus final_status = d;
      if (d == SolveStatus::kOptimal) {
        final_status = p_iterate(/*phase_one=*/false, iterations);
      }
      if (final_status == SolveStatus::kOptimal) {
        sol = extract_solution(final_status, iterations);
        if (certify(sol.values) && certify_dual()) {
          return sol;
        }
      }
    }
    return dense_fallback_cold();
  }
  if (sol.status == SolveStatus::kIterationLimit) {
    return dense_fallback_cold();
  }
  return sol;  // kInfeasible / kUnbounded: gate-confirmed, parity with dense
}

bool SparseKernel::same_basis(const Basis& b) const {
  if (b.basic.size() != rows_ || b.status.size() != total_cols_) {
    return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] != b.basic[r]) return false;
  }
  return true;
}

void SparseKernel::adopt_statuses(const Basis& b) {
  for (std::size_t c = 0; c < total_cols_; ++c) {
    if (status_[c] == VarStatus::kBasic) continue;
    VarStatus s = static_cast<VarStatus>(b.status[c]);
    if (s == VarStatus::kBasic) s = VarStatus::kAtLower;
    if (s == VarStatus::kAtUpper && !std::isfinite(upper_[c])) {
      s = VarStatus::kAtLower;
    }
    status_[c] = s;
  }
}

/// Loads a parent basis snapshot: adopt its basis header wholesale and
/// refactorize — the rebuild places every column it can and repairs the
/// rest with artificials, which is exactly the dense kernel's best-effort
/// crash semantics.  Returns false when the snapshot is unusable.
bool SparseKernel::load_snapshot(const Basis& b) {
  if (b.basic.size() != rows_ || b.status.size() != total_cols_) {
    return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    if (b.basic[r] >= total_cols_) return false;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    basis_[r] = b.basic[r];
  }
  for (std::size_t c = 0; c < total_cols_; ++c) {
    VarStatus s = static_cast<VarStatus>(b.status[c]);
    if (s == VarStatus::kAtUpper && !std::isfinite(upper_[c])) {
      s = VarStatus::kAtLower;
    }
    status_[c] = s;
  }
  if (!refactorize()) {
    return false;
  }
  freeze_artificials();
  return true;
}

bool SparseKernel::certify(const std::vector<double>& values) const {
  const double ftol = 100.0 * opt_.feasibility_tol;
  for (std::size_t c = 0; c < structural_; ++c) {
    const ColumnMap& cm = col_map_[c];
    if (cm.sign < 0.0 || var_cols_[cm.model_var].size() != 1) {
      continue;  // split / upper-shifted columns have static bounds
    }
    const double v = values[cm.model_var];
    const double tol = ftol * (1.0 + std::abs(v));
    if (v < cm.offset - tol) return false;
    if (std::isfinite(upper_[c]) && v > cm.offset + upper_[c] + tol) {
      return false;
    }
  }
  for (const Constraint& con : model_.constraints()) {
    const double lhs = model_.evaluate(con.lhs, values);
    const double tol = ftol * (1.0 + std::abs(con.rhs) + std::abs(lhs));
    switch (con.relation) {
      case Relation::kLe:
        if (lhs > con.rhs + tol) return false;
        break;
      case Relation::kGe:
        if (lhs < con.rhs - tol) return false;
        break;
      case Relation::kEq:
        if (std::abs(lhs - con.rhs) > tol) return false;
        break;
    }
  }
  return true;
}

/// Dual certificate against the pristine CSC matrix: y = BTRAN(c_B), then
/// every live column must price dual-feasibly for its status.  Same
/// contract and tolerances as the dense kernel's certify_dual (which reads
/// y from its tableau's artificial block instead).
bool SparseKernel::certify_dual() {
  const double dtol = 100.0 * opt_.feasibility_tol;
  y_.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    y_[r] = cost_[basis_[r]];
  }
  eta_.btran(y_.data());
  for (std::size_t r = 0; r < rows_; ++r) {
    if (basis_[r] >= first_artificial_ &&
        std::abs(xb_[r]) > dtol * rhs_scale_) {
      return false;  // basic artificial carrying weight
    }
  }
  for (std::size_t j = 0; j < cols_; ++j) {
    if (status_[j] != VarStatus::kBasic && upper_[j] <= 0.0) {
      continue;  // fixed column: any sign is dual feasible
    }
    const double dj = cost_[j] - mat_.dot_column(j, y_.data());
    const double mag =
        std::abs(cost_[j]) + mat_.abs_dot_column(j, y_.data());
    const double tol = dtol * (1.0 + mag);
    switch (status_[j]) {
      case VarStatus::kBasic:
        if (std::abs(dj) > tol) return false;
        break;
      case VarStatus::kAtLower:
        if (dj < -tol) return false;
        break;
      case VarStatus::kAtUpper:
        if (dj > tol) return false;
        break;
    }
  }
  return true;
}

void SparseKernel::set_bounds(std::size_t var, double lower, double upper) {
  MCS_REQUIRE(var < var_cols_.size(), "set_bounds: unknown variable");
  MCS_REQUIRE(std::isfinite(lower) && lower <= upper,
              "set_bounds: lower must be finite and <= upper");
  MCS_REQUIRE(var_cols_[var].size() == 1 &&
                  col_map_[var_cols_[var].front()].sign > 0.0,
              "set_bounds: variable must have a finite lower bound in the "
              "model (single shifted column)");
  const std::size_t c = var_cols_[var].front();
  ColumnMap& cm = col_map_[c];
  const double d_off = lower - cm.offset;
  cm.offset = lower;
  upper_[c] = std::isfinite(upper) ? upper - lower : kInfinity;
  if (!status_.empty() && status_[c] == VarStatus::kAtUpper &&
      !std::isfinite(upper_[c])) {
    status_[c] = VarStatus::kAtLower;
  }
  if (d_off != 0.0) {
    // O(column nnz) patch of the unpivoted effective rhs; xb is recomputed
    // wholesale (one FTRAN) at the next warm attempt, so unlike the dense
    // kernel nothing pivoted needs touching here.
    mat_.axpy_column(c, -d_off, eff_rhs_.data());
  }
}

void SparseKernel::set_rhs(std::size_t row, double rhs) {
  MCS_REQUIRE(row < rows_, "set_rhs: unknown constraint");
  MCS_REQUIRE(std::isfinite(rhs), "set_rhs: non-finite right-hand side");
  if (base_rhs_[row] == rhs) return;
  eff_rhs_[row] += rhs - base_rhs_[row];
  base_rhs_[row] = rhs;
  // Match the dense kernel's session semantics bit for bit: an rhs patch
  // always forces the next solve cold.
  factor_valid_ = false;
}

bool SparseKernel::warm_attempt(const Basis* parent, LpSolution& sol) {
  sol.iterations = 0;
  if (parent != nullptr && !parent->empty()) {
    if (same_basis(*parent)) {
      adopt_statuses(*parent);
    } else if (!load_snapshot(*parent)) {
      return false;
    }
  }
  active_cost_ = &cost_;
  maybe_refactor(false);
  if (!factor_valid_) return false;
  // Bound patches never touch reduced costs, so a same-basis warm restart
  // can keep the incrementally-maintained dj row; only the basic values
  // must be rebuilt from the patched rhs.
  if (!dj_valid_) compute_dj();
  compute_xb();

  const std::size_t saved_max = opt_.max_iterations;
  opt_.max_iterations = std::min(saved_max, warm_budget());
  std::size_t iterations = 0;
  const SolveStatus dual = dual_reoptimize(iterations);
  SolveStatus final_status = dual;
  if (dual == SolveStatus::kOptimal) {
    final_status = p_iterate(/*phase_one=*/false, iterations);
  }
  opt_.max_iterations = saved_max;
  sol.iterations = iterations;
  if (final_status == SolveStatus::kOptimal) {
    sol = extract_solution(final_status, iterations);
    if (certify(sol.values) && certify_dual()) {
      return true;
    }
  }
  return false;
}

Basis SparseKernel::snapshot() const {
  Basis b;
  if (!factor_valid_) return b;
  b.status.resize(total_cols_);
  for (std::size_t c = 0; c < total_cols_; ++c) {
    b.status[c] = static_cast<std::uint8_t>(status_[c]);
  }
  b.basic.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    b.basic[r] = static_cast<std::uint32_t>(basis_[r]);
  }
  return b;
}

}  // namespace

std::unique_ptr<SimplexSolver::Impl> make_sparse_kernel(
    const Model& model, const SimplexOptions& options) {
  return std::make_unique<SparseKernel>(model, options);
}

}  // namespace mcs::lp
