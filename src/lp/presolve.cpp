#include "lp/presolve.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>

#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::lp::presolve {

const char* to_string(ReductionKind kind) noexcept {
  switch (kind) {
    case ReductionKind::kFixedColumn:
      return "fixed-column";
    case ReductionKind::kSingletonRow:
      return "singleton-row";
    case ReductionKind::kRedundantRow:
      return "redundant-row";
    case ReductionKind::kForcingRow:
      return "forcing-row";
    case ReductionKind::kDuplicateRow:
      return "duplicate-row";
    case ReductionKind::kBoundTightened:
      return "bound-tightened";
    case ReductionKind::kCoefficientTightened:
      return "coefficient-tightened";
  }
  return "unknown";
}

namespace {

/// Tolerance for deciding whether an integer-variable value is integral.
/// Looser than the feasibility tolerance: integrality drift accumulates
/// through divisions, feasibility drift only through sums.
constexpr double kIntegralityTol = 1e-6;

/// Mutable working copy of the model while reductions run.  Columns are
/// never erased (a fixed column keeps its slot so the postsolve map is a
/// direct index translation); rows are tombstoned via `alive`.
class Reducer {
 public:
  Reducer(const Model& model, const PresolveOptions& opt, Presolved* out)
      : model_(model), opt_(opt), out_(out) {
    const std::size_t n = model.num_variables();
    const std::size_t m = model.num_constraints();
    cols_.reserve(n);
    for (const Variable& v : model.variables()) {
      cols_.push_back(Col{v.lower, v.upper, v.type, false, 0.0});
    }
    rows_.reserve(m);
    for (const Constraint& c : model.constraints()) {
      rows_.push_back(Row{c.lhs.terms(), c.relation, c.rhs, true});
    }
    (void)n;
  }

  void run() {
    // Initial domain normalization: round integral bounds inward and fix
    // anything the caller already pinned (LS-marking patches fix binaries
    // by setting lower == upper).
    for (std::size_t c = 0; c < cols_.size() && !infeasible_; ++c) {
      normalize_domain(c);
    }
    while (changed_ && !infeasible_ && out_->stats.rounds < opt_.max_rounds) {
      changed_ = false;
      ++out_->stats.rounds;
      for (std::size_t r = 0; r < rows_.size() && !infeasible_; ++r) {
        process_row(r);
      }
      if (!infeasible_) {
        drop_duplicate_rows();
      }
    }
    emit();
  }

 private:
  struct Col {
    double lo = 0.0;
    double hi = 0.0;
    VarType type = VarType::kContinuous;
    bool fixed = false;
    double value = 0.0;
  };
  struct Row {
    std::vector<std::pair<std::size_t, double>> terms;  // sorted by var index
    Relation rel = Relation::kLe;
    double rhs = 0.0;
    bool alive = true;
  };

  double tol(double magnitude) const {
    return opt_.feasibility_tol * (1.0 + std::abs(magnitude));
  }
  static bool integral(const Col& c) {
    return c.type != VarType::kContinuous;
  }

  void note(ReductionKind kind, std::size_t index, double value,
            std::size_t aux) {
    out_->log.push_back(Reduction{kind, index, value, aux});
  }

  void fix(std::size_t ci, double v) {
    Col& c = cols_[ci];
    if (c.fixed) {
      if (std::abs(c.value - v) > tol(v)) infeasible_ = true;
      return;
    }
    c.fixed = true;
    c.value = v;
    c.lo = c.hi = v;
    note(ReductionKind::kFixedColumn, ci, v, kRemoved);
    ++out_->stats.cols_removed;
    changed_ = true;
  }

  /// Rounds integral bounds inward, checks emptiness, fixes width-0 domains.
  void normalize_domain(std::size_t ci) {
    Col& c = cols_[ci];
    if (c.fixed) return;
    if (integral(c)) {
      if (std::isfinite(c.lo)) c.lo = std::ceil(c.lo - kIntegralityTol);
      if (std::isfinite(c.hi)) c.hi = std::floor(c.hi + kIntegralityTol);
    }
    if (c.lo > c.hi + tol(c.lo)) {
      infeasible_ = true;
      return;
    }
    if (c.hi <= c.lo) fix(ci, c.lo);
  }

  /// Applies candidate lower bound `cand` to column `ci` if it is a real
  /// improvement.  Implied bounds never cut feasible points, so this is
  /// always exact.  `row` (for the log) is kRemoved for silent updates
  /// whose provenance is already logged (singleton-row folds).
  void tighten_lo(std::size_t ci, double cand, std::size_t row) {
    if (!std::isfinite(cand) || infeasible_) return;
    Col& c = cols_[ci];
    if (c.fixed) {
      if (cand > c.value + tol(c.value)) infeasible_ = true;
      return;
    }
    if (integral(c)) cand = std::ceil(cand - kIntegralityTol);
    // An infinite incumbent is always improvable — tol(-inf) is inf, so
    // the finite-difference gate below would wrongly report no gain and
    // the caller (fold_singleton) would drop the row without the bound.
    if (std::isfinite(c.lo) && cand - c.lo <= tol(c.lo)) {
      return;  // no significant improvement
    }
    if (cand > c.hi + tol(c.hi)) {
      infeasible_ = true;
      return;
    }
    c.lo = std::min(cand, c.hi);
    changed_ = true;
    if (row != kRemoved) {
      note(ReductionKind::kBoundTightened, ci, c.lo, row);
      ++out_->stats.bounds_tightened;
    }
    if (c.hi <= c.lo) fix(ci, c.lo);
  }

  void tighten_hi(std::size_t ci, double cand, std::size_t row) {
    if (!std::isfinite(cand) || infeasible_) return;
    Col& c = cols_[ci];
    if (c.fixed) {
      if (cand < c.value - tol(c.value)) infeasible_ = true;
      return;
    }
    if (integral(c)) cand = std::floor(cand + kIntegralityTol);
    // Mirror of tighten_lo: an infinite incumbent is always improvable.
    if (std::isfinite(c.hi) && c.hi - cand <= tol(c.hi)) return;
    if (cand < c.lo - tol(c.lo)) {
      infeasible_ = true;
      return;
    }
    c.hi = std::max(cand, c.lo);
    changed_ = true;
    if (row != kRemoved) {
      note(ReductionKind::kBoundTightened, ci, c.hi, row);
      ++out_->stats.bounds_tightened;
    }
    if (c.hi <= c.lo) fix(ci, c.lo);
  }

  void remove_row(std::size_t ri, ReductionKind kind, double value = 0.0,
                  std::size_t aux = kRemoved) {
    rows_[ri].alive = false;
    note(kind, ri, value, aux);
    ++out_->stats.rows_removed;
    changed_ = true;
  }

  /// Substitutes fixed columns out of the row (rhs absorbs their
  /// contribution) so the remaining terms are all live.
  void substitute_fixed(Row& row) {
    std::size_t w = 0;
    for (std::size_t i = 0; i < row.terms.size(); ++i) {
      const auto [v, a] = row.terms[i];
      if (cols_[v].fixed) {
        row.rhs -= a * cols_[v].value;
      } else {
        row.terms[w++] = row.terms[i];
      }
    }
    row.terms.resize(w);
  }

  /// Disposes of a row whose live support is empty: drops it when the
  /// residual rhs is satisfied, flags infeasibility otherwise.
  void dispose_empty_row(std::size_t ri) {
    const Row& row = rows_[ri];
    const double t = tol(row.rhs);
    const bool sat = row.rel == Relation::kLe   ? 0.0 <= row.rhs + t
                     : row.rel == Relation::kGe ? 0.0 >= row.rhs - t
                                                : std::abs(row.rhs) <= t;
    if (sat) {
      remove_row(ri, ReductionKind::kRedundantRow);
    } else {
      infeasible_ = true;
    }
  }

  void process_row(std::size_t ri) {
    Row& row = rows_[ri];
    if (!row.alive) return;
    substitute_fixed(row);

    if (row.terms.empty()) {
      dispose_empty_row(ri);
      return;
    }
    if (row.terms.size() == 1) {
      fold_singleton(ri);
      return;
    }

    // Activity bounds over the current domains.
    double min_act = 0.0;
    double max_act = 0.0;
    bool min_fin = true;
    bool max_fin = true;
    for (const auto [v, a] : row.terms) {
      const Col& c = cols_[v];
      const double at_lo = a * c.lo;
      const double at_hi = a * c.hi;
      const double lo_c = a > 0.0 ? at_lo : at_hi;
      const double hi_c = a > 0.0 ? at_hi : at_lo;
      if (std::isfinite(lo_c)) {
        min_act += lo_c;
      } else {
        min_fin = false;
      }
      if (std::isfinite(hi_c)) {
        max_act += hi_c;
      } else {
        max_fin = false;
      }
    }
    const double act_tol = tol(std::max(std::abs(row.rhs),
                                        std::max(std::abs(min_act),
                                                 std::abs(max_act))));

    const bool need_le = row.rel != Relation::kGe;  // activity <= rhs side
    const bool need_ge = row.rel != Relation::kLe;  // activity >= rhs side

    if (need_le && min_fin && min_act > row.rhs + act_tol) {
      infeasible_ = true;
      return;
    }
    if (need_ge && max_fin && max_act < row.rhs - act_tol) {
      infeasible_ = true;
      return;
    }

    // Redundancy: the bounds alone already imply the row.
    const bool le_slack =
        !need_le || (max_fin && max_act <= row.rhs + act_tol);
    const bool ge_slack =
        !need_ge || (min_fin && min_act >= row.rhs - act_tol);
    if (le_slack && ge_slack) {
      remove_row(ri, ReductionKind::kRedundantRow);
      return;
    }

    // Forcing: the row is satisfiable only at one extreme bound vector.
    if (need_le && min_fin && min_act >= row.rhs - act_tol) {
      for (const auto [v, a] : row.terms) {
        fix(v, a > 0.0 ? cols_[v].lo : cols_[v].hi);
      }
      remove_row(ri, ReductionKind::kForcingRow);
      return;
    }
    if (need_ge && max_fin && max_act <= row.rhs + act_tol) {
      for (const auto [v, a] : row.terms) {
        fix(v, a > 0.0 ? cols_[v].hi : cols_[v].lo);
      }
      remove_row(ri, ReductionKind::kForcingRow);
      return;
    }

    // Bound tightening from residual activity.  Candidates come from the
    // activity snapshot above; tighten_* only ever improves, so stale
    // residuals are merely conservative.
    if (need_le && min_fin) {
      for (const auto [v, a] : row.terms) {
        const Col& c = cols_[v];
        const double residual =
            min_act - (a > 0.0 ? a * c.lo : a * c.hi);
        const double cand = (row.rhs - residual) / a;
        if (a > 0.0) {
          tighten_hi(v, cand, ri);
        } else {
          tighten_lo(v, cand, ri);
        }
        if (infeasible_) return;
      }
    }
    if (need_ge && max_fin) {
      for (const auto [v, a] : row.terms) {
        const Col& c = cols_[v];
        const double residual =
            max_act - (a > 0.0 ? a * c.hi : a * c.lo);
        const double cand = (row.rhs - residual) / a;
        if (a > 0.0) {
          tighten_lo(v, cand, ri);
        } else {
          tighten_hi(v, cand, ri);
        }
        if (infeasible_) return;
      }
    }

    // Big-M coefficient strengthening on pure <= rows over 0/1 columns.
    // For a binary x_j with coefficient a_j in  sum a x <= b  and
    // U_-j = max activity of the other terms:
    //   a_j > 0, 0 < b - U_-j < a_j:   a_j -= d, b -= d  with d = b - U_-j
    //     (x_j = 1 was feasible only when the rest sat below U_-j anyway;
    //      both integer-point sides are preserved exactly);
    //   a_j < 0, U_-j > b and U_-j < b - a_j:  a_j = -(U_-j - b)
    //     (shrinks the big-M to the smallest value that still deactivates
    //      the row at x_j = 1).
    // One application per row per round; the next round recomputes
    // activities before applying more.
    if (row.rel == Relation::kLe && max_fin && !rows_[ri].terms.empty()) {
      for (auto& [v, a] : row.terms) {
        const Col& c = cols_[v];
        if (!integral(c) || c.fixed || c.lo != 0.0 || c.hi != 1.0) continue;
        if (a > 0.0) {
          const double u_minus = max_act - a;  // x_j contributes a at hi=1
          const double d = row.rhs - u_minus;
          if (d > act_tol && d < a - act_tol) {
            a -= d;
            row.rhs -= d;
            note(ReductionKind::kCoefficientTightened, ri, a, v);
            ++out_->stats.coefficients_tightened;
            changed_ = true;
            break;
          }
        } else {
          const double u_minus = max_act;  // x_j contributes 0 at hi
          const double d = (row.rhs - a) - u_minus;
          if (u_minus > row.rhs + act_tol && d > act_tol) {
            a = -(u_minus - row.rhs);
            note(ReductionKind::kCoefficientTightened, ri, a, v);
            ++out_->stats.coefficients_tightened;
            changed_ = true;
            break;
          }
        }
      }
    }
  }

  void fold_singleton(std::size_t ri) {
    Row& row = rows_[ri];
    const auto [ci, a] = row.terms[0];
    MCS_ASSERT(a != 0.0, "presolve: zero coefficient survived normalization");
    const double v = row.rhs / a;
    switch (row.rel) {
      case Relation::kEq: {
        Col& c = cols_[ci];
        double val = v;
        if (integral(c)) {
          const double r = std::round(val);
          if (std::abs(val - r) > kIntegralityTol) {
            infeasible_ = true;
            return;
          }
          val = r;
        }
        if (val < c.lo - tol(c.lo) || val > c.hi + tol(c.hi)) {
          infeasible_ = true;
          return;
        }
        fix(ci, std::clamp(val, c.lo, c.hi));
        break;
      }
      case Relation::kLe:
        if (a > 0.0) {
          tighten_hi(ci, v, kRemoved);
        } else {
          tighten_lo(ci, v, kRemoved);
        }
        break;
      case Relation::kGe:
        if (a > 0.0) {
          tighten_lo(ci, v, kRemoved);
        } else {
          tighten_hi(ci, v, kRemoved);
        }
        break;
    }
    if (!infeasible_) {
      remove_row(ri, ReductionKind::kSingletonRow, v, ci);
    }
  }

  /// Removes rows whose term vectors are bitwise identical (terms are
  /// sorted by variable index, so equality is a direct vector compare)
  /// keeping the dominating right-hand side per relation, and resolves
  /// <= / >= / == interplay on the shared support.
  void drop_duplicate_rows() {
    struct Bucket {
      std::size_t eq = kRemoved;
      std::size_t le = kRemoved;
      std::size_t ge = kRemoved;
    };
    std::map<std::vector<std::pair<std::size_t, double>>, Bucket> buckets;
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      Row& row = rows_[r];
      if (!row.alive) continue;
      substitute_fixed(row);
      if (row.terms.empty()) continue;  // next round's process_row disposes
      Bucket& b = buckets[row.terms];
      switch (row.rel) {
        case Relation::kEq:
          if (b.eq == kRemoved) {
            b.eq = r;
          } else if (std::abs(row.rhs - rows_[b.eq].rhs) >
                     tol(rows_[b.eq].rhs)) {
            infeasible_ = true;
            return;
          } else {
            remove_row(r, ReductionKind::kDuplicateRow, row.rhs, b.eq);
          }
          break;
        case Relation::kLe:
          if (b.le == kRemoved) {
            b.le = r;
          } else if (row.rhs < rows_[b.le].rhs) {
            remove_row(b.le, ReductionKind::kDuplicateRow, rows_[b.le].rhs,
                       r);
            b.le = r;
          } else {
            remove_row(r, ReductionKind::kDuplicateRow, row.rhs, b.le);
          }
          break;
        case Relation::kGe:
          if (b.ge == kRemoved) {
            b.ge = r;
          } else if (row.rhs > rows_[b.ge].rhs) {
            remove_row(b.ge, ReductionKind::kDuplicateRow, rows_[b.ge].rhs,
                       r);
            b.ge = r;
          } else {
            remove_row(r, ReductionKind::kDuplicateRow, row.rhs, b.ge);
          }
          break;
      }
    }
    for (const auto& [terms, b] : buckets) {
      (void)terms;
      if (b.eq != kRemoved) {
        const double eq_rhs = rows_[b.eq].rhs;
        if (b.le != kRemoved) {
          if (rows_[b.le].rhs >= eq_rhs - tol(eq_rhs)) {
            remove_row(b.le, ReductionKind::kDuplicateRow, rows_[b.le].rhs,
                       b.eq);
          } else {
            infeasible_ = true;
            return;
          }
        }
        if (b.ge != kRemoved) {
          if (rows_[b.ge].rhs <= eq_rhs + tol(eq_rhs)) {
            remove_row(b.ge, ReductionKind::kDuplicateRow, rows_[b.ge].rhs,
                       b.eq);
          } else {
            infeasible_ = true;
            return;
          }
        }
      } else if (b.le != kRemoved && b.ge != kRemoved) {
        if (rows_[b.le].rhs < rows_[b.ge].rhs - tol(rows_[b.ge].rhs)) {
          infeasible_ = true;
          return;
        }
        // Equal rhs would merge to an equality; both rows are kept — the
        // reduction must stay a pure removal for the map to hold.
      }
    }
  }

  /// Geometric-mean equilibration over the surviving submatrix: fills
  /// `rs` / `cs` in *original* row/column index space (dead rows and fixed
  /// columns keep 1).  Every scale is a power of two — snapped via
  /// exp2(round(log2(.))) — so applying it is exact in floating point.
  /// Integral columns are pinned at 1: their bounds, branching values, and
  /// pack-row membership (unit coefficients over 0/1 columns, detected by
  /// the MILP layer on this reduced model) must survive verbatim.
  void compute_scales(std::vector<double>* rs_out,
                      std::vector<double>* cs_out) const {
    std::vector<double>& rs = *rs_out;
    std::vector<double>& cs = *cs_out;
    rs.assign(rows_.size(), 1.0);
    cs.assign(cols_.size(), 1.0);
    const auto snap = [](double g) {
      return g > 0.0 && std::isfinite(g)
                 ? std::exp2(-std::round(std::log2(g)))
                 : 1.0;
    };
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> clo(cols_.size());
    std::vector<double> chi(cols_.size());
    // Two alternating row/column sweeps; the power-of-two rounding absorbs
    // any further refinement on these models.
    for (int sweep = 0; sweep < 2; ++sweep) {
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        const Row& row = rows_[r];
        if (!row.alive) continue;
        double lo = inf;
        double hi = 0.0;
        for (const auto [v, a] : row.terms) {
          const double m = std::abs(a) * cs[v];
          if (m == 0.0) continue;
          lo = std::min(lo, m);
          hi = std::max(hi, m);
        }
        if (hi > 0.0) rs[r] = snap(std::sqrt(lo * hi));
      }
      clo.assign(cols_.size(), inf);
      chi.assign(cols_.size(), 0.0);
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        const Row& row = rows_[r];
        if (!row.alive) continue;
        for (const auto [v, a] : row.terms) {
          const double m = std::abs(a) * rs[r];
          if (m == 0.0) continue;
          clo[v] = std::min(clo[v], m);
          chi[v] = std::max(chi[v], m);
        }
      }
      for (std::size_t c = 0; c < cols_.size(); ++c) {
        if (cols_[c].fixed || integral(cols_[c])) continue;
        if (chi[c] > 0.0) cs[c] = snap(std::sqrt(clo[c] * chi[c]));
      }
    }
  }

  void emit() {
    // The round cap can leave fixings unsubstituted in surviving rows;
    // absorb them now and dispose of rows whose live support collapses to
    // empty — emitting an empty-LHS row would delegate a possible
    // infeasibility to whatever the solver does with degenerate rows.
    for (std::size_t r = 0; r < rows_.size() && !infeasible_; ++r) {
      Row& row = rows_[r];
      if (!row.alive) continue;
      substitute_fixed(row);
      if (row.terms.empty()) dispose_empty_row(r);
    }

    PostsolveMap& map = out_->map;
    map.original_cols = cols_.size();
    map.original_rows = rows_.size();
    map.col_map.assign(cols_.size(), kRemoved);
    map.fixed_value.assign(cols_.size(), 0.0);
    map.row_map.assign(rows_.size(), kRemoved);

    if (infeasible_) {
      out_->infeasible = true;
      for (std::size_t c = 0; c < cols_.size(); ++c) {
        map.fixed_value[c] = cols_[c].fixed ? cols_[c].value : cols_[c].lo;
      }
      support::telemetry::count("lp.presolve.infeasible");
      return;
    }

    // Equilibration scales, in original index space (all ones when the
    // pass is off or settles on the identity).  Applied while the reduced
    // model is built below; recorded in the map only when non-trivial so
    // the unscaled path stays bit-identical to `equilibrate = false`.
    std::vector<double> rs(rows_.size(), 1.0);
    std::vector<double> cs(cols_.size(), 1.0);
    bool scaled = false;
    if (opt_.equilibrate) {
      compute_scales(&rs, &cs);
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (rows_[r].alive && rs[r] != 1.0) {
          ++out_->stats.rows_scaled;
          scaled = true;
        }
      }
      for (std::size_t c = 0; c < cols_.size(); ++c) {
        if (!cols_[c].fixed && cs[c] != 1.0) {
          ++out_->stats.cols_scaled;
          scaled = true;
        }
      }
    }

    Model& red = out_->reduced;
    std::size_t n_cols = 0;
    for (const Col& c : cols_) {
      if (!c.fixed) ++n_cols;
    }
    red.reserve_variables(n_cols);
    if (scaled) map.col_scale.reserve(n_cols);
    for (std::size_t c = 0; c < cols_.size(); ++c) {
      const Col& col = cols_[c];
      if (col.fixed) {
        map.fixed_value[c] = col.value;
        continue;
      }
      const std::string& name = model_.variables()[c].name;
      VarId id{};
      switch (col.type) {
        case VarType::kContinuous:
          // Power-of-two division is exact; x_reduced = x / cs.
          id = red.add_continuous(col.lo / cs[c], col.hi / cs[c], name);
          break;
        case VarType::kBinary:
          id = red.add_binary(name);
          red.set_bounds(id, col.lo, col.hi);
          break;
        case VarType::kInteger:
          id = red.add_integer(col.lo, col.hi, name);
          break;
      }
      map.col_map[c] = id.index;
      if (scaled) map.col_scale.push_back(cs[c]);
    }

    std::size_t n_rows = 0;
    for (const Row& r : rows_) {
      if (r.alive) ++n_rows;
    }
    red.reserve_constraints(n_rows);
    if (scaled) map.row_scale.reserve(n_rows);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      Row& row = rows_[r];
      if (!row.alive) continue;
      LinExpr lhs;
      for (const auto [v, a] : row.terms) {
        lhs.add_term(VarId{map.col_map[v]}, a * rs[r] * cs[v]);
      }
      map.row_map[r] = red.num_constraints();
      if (scaled) map.row_scale.push_back(rs[r]);
      red.add_constraint(lhs, row.rel, LinExpr(row.rhs * rs[r]),
                         model_.constraints()[r].name);
    }

    // Objective: surviving terms map across; fixed columns fold into the
    // constant so objective values transfer between spaces unchanged.
    double constant = model_.objective().constant();
    LinExpr obj(0.0);
    for (const auto [v, coef] : model_.objective().terms()) {
      if (cols_[v].fixed) {
        constant += coef * cols_[v].value;
      } else {
        // c * x == (c * cs) * (x / cs): objective values transfer exactly.
        obj.add_term(VarId{map.col_map[v]}, coef * cs[v]);
      }
    }
    obj += LinExpr(constant);
    red.set_objective(model_.objective_sense(), obj);

    namespace tel = support::telemetry;
    if (tel::enabled()) {
      tel::count("lp.presolve.runs");
      tel::count("lp.presolve.rows_removed",
                 static_cast<std::uint64_t>(out_->stats.rows_removed));
      tel::count("lp.presolve.cols_removed",
                 static_cast<std::uint64_t>(out_->stats.cols_removed));
      tel::count("lp.presolve.bounds_tightened",
                 static_cast<std::uint64_t>(out_->stats.bounds_tightened));
      tel::count("lp.presolve.coefficients_tightened",
                 static_cast<std::uint64_t>(out_->stats.coefficients_tightened));
      tel::count("lp.presolve.rows_scaled",
                 static_cast<std::uint64_t>(out_->stats.rows_scaled));
      tel::count("lp.presolve.cols_scaled",
                 static_cast<std::uint64_t>(out_->stats.cols_scaled));
    }
  }

  const Model& model_;
  PresolveOptions opt_;
  Presolved* out_;
  std::vector<Col> cols_;
  std::vector<Row> rows_;
  bool infeasible_ = false;
  bool changed_ = true;
};

}  // namespace

Presolved presolve(const Model& model, const PresolveOptions& options) {
  Presolved out;
  Reducer reducer(model, options, &out);
  reducer.run();
  return out;
}

}  // namespace mcs::lp::presolve
