#include "lp/lp_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mcs::lp {

namespace {

enum class Section {
  kPreamble,
  kObjective,
  kConstraints,
  kBounds,
  kGenerals,
  kBinaries,
  kEnd,
};

struct ParsedConstraint {
  std::string name;
  std::vector<std::pair<std::string, double>> terms;
  double lhs_constant = 0.0;
  Relation relation = Relation::kLe;
  double rhs = 0.0;
};

struct ParsedBounds {
  double lower = 0.0;
  double upper = kInfinity;
};

std::string lower_copy(std::string text) {
  for (char& c : text) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return text;
}

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw LpParseError("lp format, line " + std::to_string(line) + ": " +
                     message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    tokens.push_back(token);
  }
  return tokens;
}

bool parse_number(const std::string& token, double* value) {
  if (token.empty()) {
    return false;
  }
  // Reject name-like tokens up front; strtod would accept "inf"/"nan".
  const char first = token.front();
  if (std::isalpha(static_cast<unsigned char>(first)) != 0 || first == '_') {
    return false;
  }
  char* end = nullptr;
  *value = std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

bool is_relation(const std::string& token, Relation* relation) {
  if (token == "<=" || token == "<" || token == "=<") {
    *relation = Relation::kLe;
    return true;
  }
  if (token == ">=" || token == ">" || token == "=>") {
    *relation = Relation::kGe;
    return true;
  }
  if (token == "=") {
    *relation = Relation::kEq;
    return true;
  }
  return false;
}

/// Parses `[+|-] [coef] name | [+|-] constant` sequences from
/// tokens[begin, end).
void parse_expr(const std::vector<std::string>& tokens, std::size_t begin,
                std::size_t end, std::size_t line,
                std::vector<std::pair<std::string, double>>* terms,
                double* constant) {
  double sign = 1.0;
  bool have_sign = false;
  for (std::size_t i = begin; i < end; ++i) {
    const std::string& token = tokens[i];
    if (token == "+" || token == "-") {
      if (have_sign) {
        fail(line, "consecutive signs in expression");
      }
      sign = token == "-" ? -1.0 : 1.0;
      have_sign = true;
      continue;
    }
    double value = 0.0;
    if (parse_number(token, &value)) {
      if (i + 1 < end && !parse_number(tokens[i + 1], &value) &&
          tokens[i + 1] != "+" && tokens[i + 1] != "-") {
        double coef = 0.0;
        parse_number(token, &coef);
        terms->emplace_back(tokens[i + 1], sign * coef);
        ++i;
      } else {
        double c = 0.0;
        parse_number(token, &c);
        *constant += sign * c;
      }
    } else {
      terms->emplace_back(token, sign);
    }
    sign = 1.0;
    have_sign = false;
  }
  if (have_sign) {
    fail(line, "dangling sign at end of expression");
  }
}

class Builder {
 public:
  std::size_t index_of(const std::string& name) {
    const auto it = index_.find(name);
    if (it != index_.end()) {
      return it->second;
    }
    const std::size_t index = order_.size();
    index_.emplace(name, index);
    order_.push_back(name);
    bounds_.push_back(std::nullopt);
    types_.push_back(VarType::kContinuous);
    return index;
  }

  void set_bounds(const std::string& name, ParsedBounds bounds) {
    bounds_[index_of(name)] = bounds;
  }

  void set_type(const std::string& name, VarType type) {
    types_[index_of(name)] = type;
  }

  LinExpr expr_of(const std::vector<std::pair<std::string, double>>& terms,
                  double constant, const std::vector<VarId>& ids,
                  std::size_t line) const {
    LinExpr expr(constant);
    for (const auto& [name, coef] : terms) {
      const auto it = index_.find(name);
      if (it == index_.end()) {
        fail(line, "unknown variable '" + name + "'");
      }
      expr.add_term(ids[it->second], coef);
    }
    return expr;
  }

  std::vector<VarId> install_variables(Model* model) const {
    std::vector<VarId> ids;
    ids.reserve(order_.size());
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const VarType type = types_[i];
      // Defaults per LP format: continuous/integer in [0, +inf), binary
      // in [0, 1]; an explicit Bounds entry overrides.
      ParsedBounds bounds;
      if (type == VarType::kBinary) {
        bounds.upper = 1.0;
      }
      if (bounds_[i].has_value()) {
        bounds = *bounds_[i];
      }
      VarId id;
      switch (type) {
        case VarType::kContinuous:
          id = model->add_continuous(bounds.lower, bounds.upper, order_[i]);
          break;
        case VarType::kBinary:
          id = model->add_binary(order_[i]);
          model->set_bounds(id, bounds.lower, bounds.upper);
          break;
        case VarType::kInteger:
          id = model->add_integer(bounds.lower, bounds.upper, order_[i]);
          break;
      }
      ids.push_back(id);
    }
    return ids;
  }

 private:
  std::unordered_map<std::string, std::size_t> index_;
  std::vector<std::string> order_;
  std::vector<std::optional<ParsedBounds>> bounds_;
  std::vector<VarType> types_;
};

double parse_bound_value(const std::string& token, std::size_t line) {
  const std::string low = lower_copy(token);
  if (low == "-inf" || low == "-infinity") {
    return -kInfinity;
  }
  if (low == "inf" || low == "+inf" || low == "infinity" ||
      low == "+infinity") {
    return kInfinity;
  }
  double value = 0.0;
  if (!parse_number(token, &value)) {
    fail(line, "expected a bound value, got '" + token + "'");
  }
  return value;
}

}  // namespace

Model read_lp_format(std::istream& in) {
  // --- Split into comment-stripped lines per section -----------------------
  Section section = Section::kPreamble;
  Sense sense = Sense::kMinimize;
  std::vector<std::pair<std::size_t, std::string>> objective_lines;
  std::vector<std::pair<std::size_t, std::string>> constraint_lines;
  std::vector<std::pair<std::size_t, std::string>> bounds_lines;
  std::vector<std::pair<std::size_t, std::string>> generals_lines;
  std::vector<std::pair<std::size_t, std::string>> binaries_lines;

  std::string raw;
  std::size_t line_no = 0;
  bool saw_objective_header = false;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t comment = raw.find('\\');
    if (comment != std::string::npos) {
      raw.erase(comment);
    }
    const std::string trimmed_lower = lower_copy(raw);
    const auto first_char = trimmed_lower.find_first_not_of(" \t\r");
    if (first_char == std::string::npos) {
      continue;
    }
    const auto last_char = trimmed_lower.find_last_not_of(" \t\r");
    const std::string keyword =
        trimmed_lower.substr(first_char, last_char - first_char + 1);

    if (keyword == "maximize" || keyword == "maximise" || keyword == "max") {
      sense = Sense::kMaximize;
      section = Section::kObjective;
      saw_objective_header = true;
      continue;
    }
    if (keyword == "minimize" || keyword == "minimise" || keyword == "min") {
      sense = Sense::kMinimize;
      section = Section::kObjective;
      saw_objective_header = true;
      continue;
    }
    if (keyword == "subject to" || keyword == "such that" ||
        keyword == "st" || keyword == "s.t." || keyword == "st.") {
      section = Section::kConstraints;
      continue;
    }
    if (keyword == "bounds" || keyword == "bound") {
      section = Section::kBounds;
      continue;
    }
    if (keyword == "generals" || keyword == "general" ||
        keyword == "integers" || keyword == "integer") {
      section = Section::kGenerals;
      continue;
    }
    if (keyword == "binaries" || keyword == "binary" || keyword == "bin") {
      section = Section::kBinaries;
      continue;
    }
    if (keyword == "end") {
      section = Section::kEnd;
      continue;
    }

    switch (section) {
      case Section::kPreamble:
        fail(line_no, "content before the objective sense keyword");
      case Section::kObjective:
        objective_lines.emplace_back(line_no, raw);
        break;
      case Section::kConstraints:
        constraint_lines.emplace_back(line_no, raw);
        break;
      case Section::kBounds:
        bounds_lines.emplace_back(line_no, raw);
        break;
      case Section::kGenerals:
        generals_lines.emplace_back(line_no, raw);
        break;
      case Section::kBinaries:
        binaries_lines.emplace_back(line_no, raw);
        break;
      case Section::kEnd:
        fail(line_no, "content after End");
    }
  }
  if (!saw_objective_header) {
    fail(line_no, "missing Maximize/Minimize section");
  }

  Builder builder;

  // --- Bounds first: the writer lists every column here in order, which
  // pins the reader's variable indices to the source model's.
  for (const auto& [line, text] : bounds_lines) {
    const std::vector<std::string> tokens = tokenize(text);
    if (tokens.empty()) {
      continue;
    }
    ParsedBounds bounds;
    if (tokens.size() == 2 && lower_copy(tokens[1]) == "free") {
      bounds.lower = -kInfinity;
      bounds.upper = kInfinity;
      builder.set_bounds(tokens[0], bounds);
      continue;
    }
    Relation relation = Relation::kLe;
    if (tokens.size() == 3 && is_relation(tokens[1], &relation)) {
      // "lb <= name" or "name <= ub" (also >= mirrored).
      double value = 0.0;
      const bool first_is_value = parse_number(tokens[0], &value) ||
                                  lower_copy(tokens[0]).find("inf") !=
                                      std::string::npos;
      const std::string& name = first_is_value ? tokens[2] : tokens[0];
      const double bound =
          parse_bound_value(first_is_value ? tokens[0] : tokens[2], line);
      const bool is_lower = first_is_value == (relation == Relation::kLe);
      if (relation == Relation::kEq) {
        bounds.lower = bounds.upper = bound;
      } else if (is_lower) {
        bounds.lower = bound;
      } else {
        bounds.upper = bound;
      }
      builder.set_bounds(name, bounds);
      continue;
    }
    if (tokens.size() == 5 && is_relation(tokens[1], &relation) &&
        relation == Relation::kLe && tokens[3] == tokens[1]) {
      bounds.lower = parse_bound_value(tokens[0], line);
      bounds.upper = parse_bound_value(tokens[4], line);
      builder.set_bounds(tokens[2], bounds);
      continue;
    }
    fail(line, "unrecognized bounds entry '" + text + "'");
  }
  for (const auto& entry : generals_lines) {
    for (const std::string& name : tokenize(entry.second)) {
      builder.set_type(name, VarType::kInteger);
    }
  }
  for (const auto& entry : binaries_lines) {
    for (const std::string& name : tokenize(entry.second)) {
      builder.set_type(name, VarType::kBinary);
    }
  }

  // --- Objective -----------------------------------------------------------
  std::vector<std::pair<std::string, double>> objective_terms;
  double objective_constant = 0.0;
  {
    std::vector<std::string> tokens;
    std::size_t first_line = 0;
    for (const auto& [line, text] : objective_lines) {
      if (first_line == 0) {
        first_line = line;
      }
      for (std::string& token : tokenize(text)) {
        tokens.push_back(std::move(token));
      }
    }
    std::size_t begin = 0;
    if (!tokens.empty() && tokens[0].back() == ':') {
      begin = 1;
    } else if (tokens.size() > 1 && tokens[1] == ":") {
      begin = 2;
    }
    parse_expr(tokens, begin, tokens.size(), first_line, &objective_terms,
               &objective_constant);
    // Register objective-only variables (after Bounds, preserving order).
    for (const auto& term : objective_terms) {
      builder.index_of(term.first);
    }
  }

  // --- Constraints ---------------------------------------------------------
  std::vector<ParsedConstraint> parsed_constraints;
  for (const auto& [line, text] : constraint_lines) {
    std::vector<std::string> tokens = tokenize(text);
    if (tokens.empty()) {
      continue;
    }
    ParsedConstraint row;
    std::size_t begin = 0;
    if (tokens[0].back() == ':') {
      row.name = tokens[0].substr(0, tokens[0].size() - 1);
      begin = 1;
    } else if (tokens.size() > 1 && tokens[1] == ":") {
      row.name = tokens[0];
      begin = 2;
    }
    std::size_t rel_at = tokens.size();
    for (std::size_t i = begin; i < tokens.size(); ++i) {
      if (is_relation(tokens[i], &row.relation)) {
        rel_at = i;
      }
    }
    if (rel_at == tokens.size()) {
      fail(line, "constraint without a relation operator");
    }
    if (rel_at + 2 != tokens.size()) {
      fail(line, "constraint right-hand side must be a single value");
    }
    if (!parse_number(tokens[rel_at + 1], &row.rhs)) {
      fail(line, "non-numeric right-hand side '" + tokens[rel_at + 1] + "'");
    }
    parse_expr(tokens, begin, rel_at, line, &row.terms, &row.lhs_constant);
    for (const auto& term : row.terms) {
      builder.index_of(term.first);
    }
    parsed_constraints.push_back(std::move(row));
  }

  // --- Assemble the model --------------------------------------------------
  Model model;
  const std::vector<VarId> ids = builder.install_variables(&model);
  model.set_objective(
      sense, builder.expr_of(objective_terms, objective_constant, ids, 0));
  for (const ParsedConstraint& row : parsed_constraints) {
    model.add_constraint(
        builder.expr_of(row.terms, row.lhs_constant, ids, 0), row.relation,
        LinExpr(row.rhs), row.name);
  }
  return model;
}

Model read_lp_format(const std::string& text) {
  std::istringstream in(text);
  return read_lp_format(in);
}

}  // namespace mcs::lp
