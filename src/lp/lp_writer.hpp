// CPLEX-LP-format export of lp::Model.
//
// Lets users cross-check this library's solver against an external one
// (CPLEX, Gurobi, SCIP, HiGHS all read the LP format): dump any model —
// including the schedulability-analysis MILPs — and solve it elsewhere.
// The reproduction's own tests use the writer for golden-format checks.
#pragma once

#include <iosfwd>
#include <string>

#include "lp/model.hpp"

namespace mcs::lp {

/// Writes `model` in CPLEX LP format.  Variable names from the model are
/// used when present and sanitized to LP-format rules; unnamed variables
/// get x<i>.
void write_lp_format(const Model& model, std::ostream& out);

/// Convenience overload returning a string.
std::string to_lp_format(const Model& model);

}  // namespace mcs::lp
