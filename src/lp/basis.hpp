// Product-form-inverse (PFI) representation of a simplex basis for the
// sparse revised-simplex kernel (simplex_sparse.cpp).
//
// The basis inverse is held as a product of elementary "eta" transforms,
// one per pivot: after a pivot in position p with FTRANed entering column
// alpha = B^-1 a_q, the new inverse is E^-1 B^-1 where E is the identity
// with column p replaced by alpha.  FTRAN applies the transforms in append
// order; BTRAN applies them transposed in reverse order.  The file grows by
// one eta per pivot and is periodically collapsed by refactorization
// (rebuilding the chain from the current basis columns), which both bounds
// the per-application cost and discards accumulated round-off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcs::lp {

class EtaFile {
 public:
  /// Resets to the identity on `rows` rows, discarding every eta.
  void reset(std::size_t rows) {
    rows_ = rows;
    pivot_row_.clear();
    inv_pivot_.clear();
    entry_start_.assign(1, 0);
    entry_row_.clear();
    entry_value_.clear();
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t eta_count() const noexcept { return pivot_row_.size(); }
  /// Total off-diagonal entries across all etas (the file's memory and
  /// per-application cost driver; refactorization policy watches this).
  std::size_t eta_entries() const noexcept { return entry_row_.size(); }

  /// Appends the eta for a pivot in row `pivot_row` with FTRANed column
  /// `alpha` (dense, size rows()).  Returns false — appending nothing —
  /// when the pivot element's magnitude is `min_pivot` or below.
  bool append(const double* alpha, std::size_t pivot_row, double min_pivot);

  /// x <- B^-1 x (dense vector of size rows()).
  void ftran(double* x) const;

  /// y^T <- y^T B^-1 (dense vector of size rows()).
  void btran(double* y) const;

 private:
  std::size_t rows_ = 0;
  std::vector<std::uint32_t> pivot_row_;
  std::vector<double> inv_pivot_;
  std::vector<std::size_t> entry_start_;  ///< size eta_count() + 1
  std::vector<std::uint32_t> entry_row_;
  std::vector<double> entry_value_;
};

}  // namespace mcs::lp
