// Compressed-sparse-column storage for the revised-simplex kernel
// (simplex_sparse.cpp).  Immutable after build: the simplex constraint
// matrix is baked once per solver; bound and rhs changes never touch the
// coefficients.  Column-major because most revised-simplex access patterns
// are column sweeps — FTRAN loads one column, pricing and the certificates
// take dot products of a dense row vector with many columns.  A row-major
// mirror (built once alongside) serves the pivot-row computation
// alpha = rho^T B^-1 A, which would otherwise gather one cache line per
// column.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mcs::lp {

class SparseMatrix {
 public:
  SparseMatrix() = default;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return col_start_.empty() ? 0 : col_start_.size() - 1; }
  std::size_t nnz() const noexcept { return row_ind_.size(); }
  std::size_t column_nnz(std::size_t c) const noexcept {
    return col_start_[c + 1] - col_start_[c];
  }

  /// x += scale * A_c  (x is a dense row-space vector of size rows()).
  void axpy_column(std::size_t c, double scale, double* x) const {
    const std::size_t end = col_start_[c + 1];
    for (std::size_t k = col_start_[c]; k < end; ++k) {
      x[row_ind_[k]] += scale * values_[k];
    }
  }

  /// Returns <A_c, x>  (x is a dense row-space vector of size rows()).
  double dot_column(std::size_t c, const double* x) const {
    double acc = 0.0;
    const std::size_t end = col_start_[c + 1];
    for (std::size_t k = col_start_[c]; k < end; ++k) {
      acc += values_[k] * x[row_ind_[k]];
    }
    return acc;
  }

  /// Returns <|A_c|, |x|> — the magnitude companion of dot_column, used for
  /// magnitude-relative tolerances in the dual-certificate pricing pass.
  double abs_dot_column(std::size_t c, const double* x) const {
    double acc = 0.0;
    const std::size_t end = col_start_[c + 1];
    for (std::size_t k = col_start_[c]; k < end; ++k) {
      acc += std::abs(values_[k] * x[row_ind_[k]]);
    }
    return acc;
  }

  /// Scatters column `c` into the dense vector `x` (which the caller has
  /// zeroed), returning the column's largest absolute value.
  double scatter_column(std::size_t c, double* x) const {
    double mag = 0.0;
    const std::size_t end = col_start_[c + 1];
    for (std::size_t k = col_start_[c]; k < end; ++k) {
      x[row_ind_[k]] = values_[k];
      const double a = std::abs(values_[k]);
      if (a > mag) mag = a;
    }
    return mag;
  }

  /// acc += scale * (row r of A) over the row-major mirror: one sequential
  /// pass instead of a strided gather across every column.
  void add_row_scaled(std::size_t r, double scale, double* acc) const {
    const std::size_t end = row_start_[r + 1];
    for (std::size_t k = row_start_[r]; k < end; ++k) {
      acc[col_ind_[k]] += scale * row_values_[k];
    }
  }

  /// Accumulating builder: duplicate (row, col) entries are summed in
  /// insertion order, matching how the dense kernel folds repeated model
  /// terms into one tableau cell.
  class Builder {
   public:
    Builder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

    void add(std::size_t row, std::size_t col, double value) {
      entries_.push_back(Entry{row, col, entries_.size(), value});
    }

    SparseMatrix build() &&;

   private:
    struct Entry {
      std::size_t row;
      std::size_t col;
      std::size_t seq;  ///< insertion order, for deterministic accumulation
      double value;
    };
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Entry> entries_;
  };

 private:
  std::size_t rows_ = 0;
  std::vector<std::size_t> col_start_;  ///< size cols + 1
  std::vector<std::uint32_t> row_ind_;
  std::vector<double> values_;
  std::vector<std::size_t> row_start_;  ///< size rows + 1 (CSR mirror)
  std::vector<std::uint32_t> col_ind_;
  std::vector<double> row_values_;
};

}  // namespace mcs::lp
