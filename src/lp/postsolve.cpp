#include "lp/postsolve.hpp"

#include <cmath>

#include "support/contracts.hpp"

namespace mcs::lp::presolve {

std::size_t PostsolveMap::reduced_cols() const noexcept {
  std::size_t n = 0;
  for (const std::size_t c : col_map) {
    if (c != kRemoved) ++n;
  }
  return n;
}

std::size_t PostsolveMap::reduced_rows() const noexcept {
  std::size_t n = 0;
  for (const std::size_t r : row_map) {
    if (r != kRemoved) ++n;
  }
  return n;
}

std::vector<double> PostsolveMap::postsolve_primal(
    const std::vector<double>& reduced) const {
  MCS_REQUIRE(col_map.size() == original_cols,
              "postsolve_primal: map not initialized");
  std::vector<double> out(original_cols, 0.0);
  for (std::size_t c = 0; c < original_cols; ++c) {
    if (col_map[c] == kRemoved) {
      out[c] = fixed_value[c];
    } else {
      MCS_REQUIRE(col_map[c] < reduced.size(),
                  "postsolve_primal: reduced point too short");
      const double scale =
          col_scale.empty() ? 1.0 : col_scale[col_map[c]];
      out[c] = scale * reduced[col_map[c]];
    }
  }
  return out;
}

bool PostsolveMap::restrict_primal(const std::vector<double>& original,
                                   double tol,
                                   std::vector<double>* out) const {
  if (original.size() != original_cols) {
    return false;
  }
  std::vector<double> reduced(reduced_cols(), 0.0);
  for (std::size_t c = 0; c < original_cols; ++c) {
    if (col_map[c] == kRemoved) {
      if (std::abs(original[c] - fixed_value[c]) > tol) {
        return false;
      }
    } else {
      const double scale =
          col_scale.empty() ? 1.0 : col_scale[col_map[c]];
      reduced[col_map[c]] = original[c] / scale;
    }
  }
  *out = std::move(reduced);
  return true;
}

std::vector<int> PostsolveMap::restrict_priorities(
    const std::vector<int>& original) const {
  std::vector<int> reduced(reduced_cols(), 0);
  const std::size_t n = std::min(original.size(), col_map.size());
  for (std::size_t c = 0; c < n; ++c) {
    if (col_map[c] != kRemoved) {
      reduced[col_map[c]] = original[c];
    }
  }
  return reduced;
}

}  // namespace mcs::lp::presolve
