#include "lp/milp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::lp {

namespace {

struct Node {
  double bound = 0.0;  // parent relaxation objective (model sense)
  std::size_t id = 0;
  std::size_t depth = 0;
  /// Bounds for the integral variables only, parallel to `int_vars`.
  std::vector<std::pair<double, double>> int_bounds;
};

/// Ordering for the best-first queue: better bound first; on ties prefer
/// deeper nodes (finds integral incumbents sooner), then FIFO.
struct NodeOrder {
  bool maximize;
  bool operator()(const Node& a, const Node& b) const {
    if (a.bound != b.bound) {
      // priority_queue pops the *largest*; define "largest" = best bound.
      return maximize ? a.bound < b.bound : a.bound > b.bound;
    }
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.id > b.id;  // older nodes first
  }
};

class BranchAndBound {
 public:
  BranchAndBound(const Model& model, const MilpOptions& options)
      : base_(model), opt_(options),
        maximize_(model.objective_sense() == Sense::kMaximize) {
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      const Variable& v = model.variables()[i];
      if (v.type != VarType::kContinuous) {
        int_vars_.push_back(i);
      }
    }
  }

  MilpResult run();

 private:
  bool better(double a, double b) const {
    return maximize_ ? a > b : a < b;
  }
  double worst_value() const {
    return maximize_ ? -kInfinity : kInfinity;
  }

  void apply_bounds(Model& model,
                    const std::vector<std::pair<double, double>>& b) const {
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      model.set_bounds(VarId{int_vars_[k]}, b[k].first, b[k].second);
    }
  }

  /// Branching variable: among the fractional integral variables of the
  /// highest branch-priority class, the most fractional one (largest
  /// distance to the nearest integer); npos when integral within tolerance.
  std::size_t pick_branch_var(const std::vector<double>& values) const {
    std::size_t best = npos;
    double best_dist = opt_.integrality_tol;
    int best_prio = std::numeric_limits<int>::min();
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      const double x = values[int_vars_[k]];
      const double dist = std::abs(x - std::round(x));
      if (dist <= opt_.integrality_tol) continue;
      const int prio = int_vars_[k] < opt_.branch_priority.size()
                           ? opt_.branch_priority[int_vars_[k]]
                           : 0;
      if (prio > best_prio || (prio == best_prio && dist > best_dist)) {
        best_prio = prio;
        best_dist = dist;
        best = k;
      }
    }
    return best;
  }

  void try_update_incumbent(const std::vector<double>& values,
                            double objective, MilpResult& result) const {
    if (!result.has_incumbent || better(objective, result.objective)) {
      result.has_incumbent = true;
      result.objective = objective;
      result.values = values;
    }
  }

  /// Fix-and-complete rounding heuristic: round every integral variable to
  /// the nearest integer within its node bounds, re-solve the continuous
  /// completion, and offer the result as an incumbent.
  void rounding_heuristic(Model& scratch, const Node& node,
                          const std::vector<double>& relax_values,
                          MilpResult& result) const {
    auto fixed = node.int_bounds;
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      const auto [lo, hi] = node.int_bounds[k];
      const double x =
          std::clamp(std::round(relax_values[int_vars_[k]]), lo, hi);
      fixed[k] = {x, x};
    }
    apply_bounds(scratch, fixed);
    const LpSolution sol = solve_lp(scratch, opt_.lp);
    result.lp_iterations += sol.iterations;
    if (sol.status == SolveStatus::kOptimal) {
      try_update_incumbent(sol.values, sol.objective, result);
    }
  }

  /// LP-guided diving: repeatedly fix the most fractional integral variable
  /// to its rounded value (falling back to the opposite rounding when that
  /// makes the LP infeasible) until the relaxation comes out integral.
  /// Produces high-quality incumbents that all-at-once rounding cannot —
  /// crucial for pruning on the scheduling-analysis MILPs.
  void dive_heuristic(Model& scratch, const Node& node,
                      MilpResult& result) const {
    auto bounds = node.int_bounds;
    apply_bounds(scratch, bounds);
    LpSolution sol = solve_lp(scratch, opt_.lp);
    result.lp_iterations += sol.iterations;
    // Each pass fixes at least one variable; bound the work defensively.
    for (std::size_t pass = 0; pass <= int_vars_.size(); ++pass) {
      if (sol.status != SolveStatus::kOptimal) {
        return;
      }
      const std::size_t k = pick_branch_var(sol.values);
      if (k == npos) {
        std::vector<double> snapped = sol.values;
        for (const std::size_t v : int_vars_) {
          snapped[v] = std::round(snapped[v]);
        }
        try_update_incumbent(snapped, sol.objective, result);
        return;
      }
      const auto [lo, hi] = bounds[k];
      const double x = sol.values[int_vars_[k]];
      const double first = std::clamp(std::round(x), lo, hi);
      const double second =
          std::clamp(first > x ? std::floor(x) : std::ceil(x), lo, hi);
      bool fixed = false;
      for (const double choice : {first, second}) {
        bounds[k] = {choice, choice};
        apply_bounds(scratch, bounds);
        const LpSolution attempt = solve_lp(scratch, opt_.lp);
        result.lp_iterations += attempt.iterations;
        if (attempt.status == SolveStatus::kOptimal) {
          sol = attempt;
          fixed = true;
          break;
        }
        if (first == second) break;
      }
      if (!fixed) {
        return;  // both roundings infeasible: abandon the dive
      }
    }
  }

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  const Model& base_;
  MilpOptions opt_;
  bool maximize_;
  std::vector<std::size_t> int_vars_;
};

MilpResult BranchAndBound::run() {
  MilpResult result;
  Model scratch = base_;

  // Pure LP: no branching needed.
  if (int_vars_.empty()) {
    const LpSolution sol = solve_lp(scratch, opt_.lp);
    result.lp_iterations = sol.iterations;
    result.status = sol.status;
    if (sol.status == SolveStatus::kOptimal) {
      result.has_incumbent = true;
      result.objective = sol.objective;
      result.best_bound = sol.objective;
      result.values = sol.values;
    }
    return result;
  }

  // Detect unboundedness on the true relaxation before branching: the
  // branching ranges below clamp infinite integer domains, which would
  // silently turn an unbounded problem into a huge "optimal" one.
  {
    const LpSolution root = solve_lp(scratch, opt_.lp);
    result.lp_iterations += root.iterations;
    if (root.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (root.status == SolveStatus::kInfeasible) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }

  std::vector<std::pair<double, double>> root_bounds;
  root_bounds.reserve(int_vars_.size());
  for (const std::size_t v : int_vars_) {
    const Variable& mv = base_.variables()[v];
    // Integral variables need finite branching ranges; clamp huge domains
    // (safe for the objective once the relaxation is known to be bounded;
    // argmax components beyond 1e9 are out of scope).
    const double lo = std::isfinite(mv.lower) ? std::ceil(mv.lower) : -1e9;
    const double hi = std::isfinite(mv.upper) ? std::floor(mv.upper) : 1e9;
    if (lo > hi) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
    root_bounds.emplace_back(lo, hi);
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open(
      NodeOrder{maximize_});
  std::size_t next_id = 0;
  open.push(Node{maximize_ ? kInfinity : -kInfinity, next_id++, 0,
                 std::move(root_bounds)});

  result.best_bound = worst_value();
  bool budget_exhausted = false;

  while (!open.empty()) {
    if (result.nodes >= opt_.max_nodes) {
      budget_exhausted = true;
      break;
    }
    Node node = open.top();
    open.pop();

    // Best-first: this node's inherited bound dominates every open node.
    // Terminate when it is within the configured relative gap of the
    // incumbent — best_bound stays a valid dual bound.
    if (result.has_incumbent && opt_.relative_gap > 0.0) {
      const double tolerance =
          opt_.relative_gap * std::max(1.0, std::abs(result.objective));
      const bool within = maximize_
                              ? node.bound <= result.objective + tolerance
                              : node.bound >= result.objective - tolerance;
      if (within) {
        result.status = SolveStatus::kOptimal;
        result.gap_terminated = true;
        result.best_bound = node.bound;
        return result;
      }
    }

    // A node whose inherited bound cannot beat the incumbent is dead.
    if (result.has_incumbent &&
        !better(node.bound, result.objective + (maximize_
                                                    ? opt_.absolute_gap
                                                    : -opt_.absolute_gap))) {
      ++result.nodes_pruned;
      continue;
    }

    ++result.nodes;
    apply_bounds(scratch, node.int_bounds);
    const LpSolution relax = solve_lp(scratch, opt_.lp);
    result.lp_iterations += relax.iterations;

    if (relax.status == SolveStatus::kInfeasible) {
      continue;
    }
    if (relax.status == SolveStatus::kUnbounded) {
      // Relaxation unbounded at the root means the MILP is unbounded or
      // infeasible; report unbounded (callers treat it as "no finite bound").
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (relax.status == SolveStatus::kIterationLimit) {
      result.status = SolveStatus::kIterationLimit;
      return result;
    }

    const double bound = relax.objective;
    if (result.has_incumbent &&
        !better(bound, result.objective + (maximize_ ? opt_.absolute_gap
                                                     : -opt_.absolute_gap))) {
      ++result.nodes_pruned;
      continue;  // cannot beat incumbent
    }

    const std::size_t branch_k = pick_branch_var(relax.values);
    if (branch_k == npos) {
      // Integral relaxation: snap and accept as incumbent.
      std::vector<double> snapped = relax.values;
      for (const std::size_t v : int_vars_) {
        snapped[v] = std::round(snapped[v]);
      }
      try_update_incumbent(snapped, bound, result);
      continue;
    }

    if (opt_.enable_rounding_heuristic) {
      if (result.nodes == 1) {
        dive_heuristic(scratch, node, result);
      } else if (result.nodes % opt_.heuristic_period == 0) {
        rounding_heuristic(scratch, node, relax.values, result);
        if (!result.has_incumbent &&
            result.nodes % (opt_.heuristic_period * 8) == 0) {
          dive_heuristic(scratch, node, result);
        }
      }
    }

    const std::size_t var = int_vars_[branch_k];
    const double x = relax.values[var];
    const auto [lo, hi] = node.int_bounds[branch_k];
    const double floor_x = std::floor(x);
    const double ceil_x = std::ceil(x);

    if (floor_x >= lo) {
      Node down = node;
      down.bound = bound;
      down.id = next_id++;
      down.depth = node.depth + 1;
      down.int_bounds[branch_k].second = floor_x;
      open.push(std::move(down));
    }
    if (ceil_x <= hi) {
      Node up = node;
      up.bound = bound;
      up.id = next_id++;
      up.depth = node.depth + 1;
      up.int_bounds[branch_k].first = ceil_x;
      open.push(std::move(up));
    }
  }

  // Final status & dual bound.
  if (budget_exhausted) {
    result.status = SolveStatus::kNodeLimit;
    double open_bound = worst_value();
    // Drain the queue to find the strongest open bound.
    while (!open.empty()) {
      open_bound = better(open.top().bound, open_bound) ? open.top().bound
                                                        : open_bound;
      open.pop();
    }
    result.best_bound = result.has_incumbent
                            ? (better(open_bound, result.objective)
                                   ? open_bound
                                   : result.objective)
                            : open_bound;
    if (!std::isfinite(result.best_bound)) {
      // Root never solved: no finite dual bound available.
      result.best_bound = maximize_ ? kInfinity : -kInfinity;
    }
    return result;
  }

  if (result.has_incumbent) {
    result.status = SolveStatus::kOptimal;
    result.best_bound = result.objective;
  } else {
    result.status = SolveStatus::kInfeasible;
  }
  return result;
}

}  // namespace

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  namespace telemetry = support::telemetry;
  const telemetry::ScopedTimer timer("milp.solve");
  BranchAndBound solver(model, options);
  MilpResult result = solver.run();
  if (telemetry::enabled()) {
    telemetry::count("milp.solves");
    telemetry::count("milp.nodes_explored", result.nodes);
    telemetry::count("milp.nodes_pruned", result.nodes_pruned);
    telemetry::count("milp.lp_iterations", result.lp_iterations);
    if (result.gap_terminated) {
      telemetry::count("milp.gap_terminations");
    }
    if (result.status == SolveStatus::kNodeLimit) {
      telemetry::count("milp.node_limit_hits");
    }
  }
  return result;
}

}  // namespace mcs::lp
