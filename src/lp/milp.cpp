#include "lp/milp.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <optional>
#include <queue>

#include "lp/presolve.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::lp {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// A node whose bounds differ from the solver's current tableau by at most
/// this many deltas reoptimizes in situ with the dual simplex (each delta
/// violates at most one basic row, so the repair stays a handful of pivots);
/// anything farther solves cold — cheaper than a long dual repair.
constexpr std::size_t kWarmDeltaMax = 4;

/// Capacity of the sibling trail: the most recent unexplored siblings along
/// the current plunge are kept in a LIFO and explored before any best-first
/// pop.  Backtracking to a recent sibling changes only a few bounds, so its
/// relaxation stays a warm dual restart; siblings falling off the trail go
/// to the best-first queue (and typically solve cold when reached).
constexpr std::size_t kTrailMax = 8;

/// Per-node storage: one bound delta `(var_k, lo, hi)` against the parent
/// node instead of a full copy of every integral bound.  The full bound
/// vector of a node is reconstructed by walking the parent chain from the
/// root and applying deltas in order.
struct NodeDelta {
  std::size_t parent = npos;
  std::size_t var_k = npos;  ///< index into int_vars_; npos for the root
  double lo = 0.0;
  double hi = 0.0;
};

/// Queue entry: plain POD so heap operations move a few words, not vectors.
struct OpenNode {
  double bound = 0.0;  ///< parent relaxation objective (model sense)
  std::size_t id = 0;
  std::size_t depth = 0;
  std::size_t delta = npos;  ///< index into the delta arena
};

/// Ordering for the best-first queue: better bound first; on ties prefer
/// deeper nodes (finds integral incumbents sooner), then FIFO.
struct NodeOrder {
  bool maximize;
  bool operator()(const OpenNode& a, const OpenNode& b) const {
    if (a.bound != b.bound) {
      // priority_queue pops the *largest*; define "largest" = best bound.
      return maximize ? a.bound < b.bound : a.bound > b.bound;
    }
    if (a.depth != b.depth) return a.depth < b.depth;
    return a.id > b.id;  // older nodes first
  }
};

using IntBounds = std::vector<std::pair<double, double>>;

class BranchAndBound {
 public:
  explicit BranchAndBound(const Model& model)
      : base_(model),
        maximize_(model.objective_sense() == Sense::kMaximize) {
    int_k_of_.assign(model.num_variables(), npos);
    for (std::size_t i = 0; i < model.num_variables(); ++i) {
      const Variable& v = model.variables()[i];
      if (v.type != VarType::kContinuous) {
        int_k_of_[i] = int_vars_.size();
        int_vars_.push_back(i);
      }
    }
  }

  /// One branch & bound search under `options`.  Reusable: a later call
  /// resyncs patched model bounds / right-hand sides into the retained
  /// solvers and searches again, bit-identically to a fresh instance.
  MilpResult run(const MilpOptions& options);

  std::size_t bound_deltas_applied() const noexcept { return deltas_; }
  std::size_t node_fixings() const noexcept { return node_fixings_; }
  std::size_t node_prunes() const noexcept { return node_prunes_; }
  std::size_t warm_solves() const noexcept {
    return solver_stat(&SimplexStats::warm_solves);
  }
  std::size_t warm_fallbacks() const noexcept {
    return solver_stat(&SimplexStats::warm_fallbacks);
  }

 private:
  /// (Re)establishes the session: clamped root bounds from the current
  /// model state, root model copy, and the two retained simplex solvers,
  /// all synced to the model's present bounds and right-hand sides.
  /// Returns false when a clamped integral domain is empty (infeasible).
  bool sync_session();
  bool better(double a, double b) const {
    return maximize_ ? a > b : a < b;
  }
  double worst_value() const {
    return maximize_ ? -kInfinity : kInfinity;
  }

  std::size_t solver_stat(std::size_t SimplexStats::* field) const {
    std::size_t total = 0;
    if (main_) total += main_->stats().*field;
    if (heur_) total += heur_->stats().*field;
    return total;
  }

  LpSolution lp_solve(SimplexSolver& solver, bool warm, MilpResult& result) {
    LpSolution sol = warm ? solver.solve_warm() : solver.solve();
    result.lp_iterations += sol.iterations;
    return sol;
  }

  /// Moves `solver` (whose currently applied bounds are tracked in `cur`)
  /// to `want`, touching only the bounds that actually differ.  Returns the
  /// number of bounds changed — a proxy for how far the solver's tableau is
  /// from the target node (each change can violate at most one basic row).
  std::size_t apply_bounds(SimplexSolver& solver, IntBounds& cur,
                           const IntBounds& want) {
    std::size_t changed = 0;
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      if (cur[k] != want[k]) {
        solver.set_bounds(VarId{int_vars_[k]}, want[k].first,
                          want[k].second);
        cur[k] = want[k];
        ++deltas_;
        ++changed;
      }
    }
    return changed;
  }

  void set_one_bound(SimplexSolver& solver, IntBounds& cur, std::size_t k,
                     double lo, double hi) {
    if (cur[k] == std::make_pair(lo, hi)) return;
    solver.set_bounds(VarId{int_vars_[k]}, lo, hi);
    cur[k] = {lo, hi};
    ++deltas_;
  }

  /// Reconstructs a node's full integral-bound vector into `out` by
  /// replaying the delta chain root -> leaf (deeper deltas win).
  void bounds_for(std::size_t delta_idx, IntBounds& out) {
    out = root_bounds_;
    chain_.clear();
    for (std::size_t d = delta_idx; d != npos; d = arena_[d].parent) {
      chain_.push_back(d);
    }
    for (auto it = chain_.rbegin(); it != chain_.rend(); ++it) {
      const NodeDelta& nd = arena_[*it];
      if (nd.var_k != npos) {
        out[nd.var_k] = {nd.lo, nd.hi};
      }
    }
  }

  /// Branching variable: among the fractional integral variables of the
  /// highest branch-priority class, the most fractional one (largest
  /// distance to the nearest integer); npos when integral within tolerance.
  std::size_t pick_branch_var(const std::vector<double>& values) const {
    std::size_t best = npos;
    double best_dist = opt_.integrality_tol;
    int best_prio = std::numeric_limits<int>::min();
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      const double x = values[int_vars_[k]];
      const double dist = std::abs(x - std::round(x));
      if (dist <= opt_.integrality_tol) continue;
      const int prio = int_vars_[k] < opt_.branch_priority.size()
                           ? opt_.branch_priority[int_vars_[k]]
                           : 0;
      if (prio > best_prio || (prio == best_prio && dist > best_dist)) {
        best_prio = prio;
        best_dist = dist;
        best = k;
      }
    }
    return best;
  }

  void try_update_incumbent(const std::vector<double>& values,
                            double objective, MilpResult& result) const {
    if (!result.has_incumbent || better(objective, result.objective)) {
      result.has_incumbent = true;
      result.objective = objective;
      result.values = values;
    }
  }

  void try_seed_incumbent(MilpResult& result) const {
    if (opt_.start_values.size() != base_.num_variables()) return;
    std::vector<double> snapped = opt_.start_values;
    for (const std::size_t v : int_vars_) {
      const double r = std::round(snapped[v]);
      if (std::abs(snapped[v] - r) > opt_.integrality_tol) return;
      snapped[v] = r;
    }
    if (!base_.is_feasible(snapped, opt_.lp.feasibility_tol * 10.0)) return;
    result.has_incumbent = true;
    result.objective = base_.evaluate(base_.objective(), snapped);
    result.values = std::move(snapped);
  }

  /// Fix-and-complete rounding heuristic: round every integral variable to
  /// the nearest integer within its node bounds, re-solve the continuous
  /// completion, and offer the result as an incumbent.
  void rounding_heuristic(const IntBounds& node_bounds,
                          const std::vector<double>& relax_values,
                          MilpResult& result) {
    IntBounds fixed = node_bounds;
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      const auto [lo, hi] = node_bounds[k];
      const double x =
          std::clamp(std::round(relax_values[int_vars_[k]]), lo, hi);
      fixed[k] = {x, x};
    }
    const std::size_t changed = apply_bounds(*heur_, heur_bounds_, fixed);
    const LpSolution sol = lp_solve(
        *heur_, opt_.use_warm_start && changed <= kWarmDeltaMax, result);
    if (sol.status == SolveStatus::kOptimal) {
      try_update_incumbent(sol.values, sol.objective, result);
    }
  }

  /// LP-guided diving: repeatedly fix the most fractional integral variable
  /// to its rounded value (falling back to the opposite rounding when that
  /// makes the LP infeasible) until the relaxation comes out integral.
  /// Produces high-quality incumbents that all-at-once rounding cannot —
  /// crucial for pruning on the scheduling-analysis MILPs.  Each attempt
  /// touches only the single bound being fixed and restores it on failure.
  void dive_heuristic(const IntBounds& node_bounds, MilpResult& result) {
    const std::size_t changed = apply_bounds(*heur_, heur_bounds_, node_bounds);
    LpSolution sol = lp_solve(
        *heur_, opt_.use_warm_start && changed <= kWarmDeltaMax, result);
    // Each pass fixes at least one variable; bound the work defensively.
    for (std::size_t pass = 0; pass <= int_vars_.size(); ++pass) {
      if (sol.status != SolveStatus::kOptimal) {
        return;
      }
      const std::size_t k = pick_branch_var(sol.values);
      if (k == npos) {
        std::vector<double> snapped = sol.values;
        for (const std::size_t v : int_vars_) {
          snapped[v] = std::round(snapped[v]);
        }
        try_update_incumbent(snapped, sol.objective, result);
        return;
      }
      const auto [lo, hi] = heur_bounds_[k];
      const double x = sol.values[int_vars_[k]];
      const double first = std::clamp(std::round(x), lo, hi);
      const double second =
          std::clamp(first > x ? std::floor(x) : std::ceil(x), lo, hi);
      bool fixed = false;
      for (const double choice : {first, second}) {
        set_one_bound(*heur_, heur_bounds_, k, choice, choice);
        const LpSolution attempt = lp_solve(*heur_, opt_.use_warm_start, result);
        if (attempt.status == SolveStatus::kOptimal) {
          sol = attempt;
          fixed = true;
          break;
        }
        if (first == second) break;
      }
      if (!fixed) {
        set_one_bound(*heur_, heur_bounds_, k, lo, hi);
        return;  // both roundings infeasible: abandon the dive
      }
    }
  }

  /// A packing/cardinality row: unit coefficients over 0/1 integral
  /// columns, <= or == a (patchable) right-hand side.  The delay MILPs are
  /// dominated by these (one-exec cardinality rows, interference budgets),
  /// and under branching they propagate: once the lower bounds of a row
  /// reach its rhs, every remaining column is forced to its lower bound.
  struct PackRow {
    std::vector<std::size_t> ks;  ///< members, as indices into int_vars_
    std::size_t row = 0;          ///< constraint index (rhs read live)
    bool eq = false;
  };

  /// Detects packing rows once per session (structure is immutable).
  void collect_pack_rows();

  /// Creates a child node delta `(branch_k -> [lo, hi])` under
  /// `parent_delta`, propagating packing-row implications to a fixpoint
  /// when presolve is enabled.  Extra fixings become chained deltas; the
  /// returned index is the chain tail.  Returns npos when propagation
  /// proves the child infeasible (no LP solve needed).
  std::size_t make_child(std::size_t parent_delta,
                         const IntBounds& parent_bounds, std::size_t branch_k,
                         double lo, double hi);

  const Model& base_;
  MilpOptions opt_;
  bool maximize_;
  std::vector<std::size_t> int_vars_;
  std::vector<std::size_t> int_k_of_;  ///< var index -> index in int_vars_

  std::vector<PackRow> pack_rows_;
  std::vector<std::vector<std::size_t>> var_packs_;  ///< int k -> pack rows
  bool pack_rows_collected_ = false;
  IntBounds prop_bounds_;  ///< scratch: candidate child bounds
  std::vector<std::pair<std::size_t, double>> prop_fixed_;
  std::vector<std::size_t> prop_queue_;
  std::vector<char> prop_in_queue_;
  std::size_t node_fixings_ = 0;
  std::size_t node_prunes_ = 0;

  IntBounds root_bounds_;
  Model root_model_;  ///< base_ with integral domains clamped finite
  std::unique_ptr<SimplexSolver> main_;  ///< node relaxations
  std::unique_ptr<SimplexSolver> heur_;  ///< rounding / diving scratch
  IntBounds main_bounds_;  ///< bounds currently applied to main_
  IntBounds heur_bounds_;  ///< bounds currently applied to heur_

  std::deque<NodeDelta> arena_;
  std::vector<std::size_t> chain_;  ///< scratch for bounds_for
  std::size_t deltas_ = 0;
};

bool BranchAndBound::sync_session() {
  // Clamped integral domains from the model's *current* bounds.  Integral
  // variables need finite branching ranges; clamp huge domains (safe for
  // the objective once the relaxation is known to be bounded; argmax
  // components beyond 1e9 are out of scope).
  IntBounds fresh;
  fresh.reserve(int_vars_.size());
  for (const std::size_t v : int_vars_) {
    const Variable& mv = base_.variables()[v];
    const double lo = std::isfinite(mv.lower) ? std::ceil(mv.lower) : -1e9;
    const double hi = std::isfinite(mv.upper) ? std::floor(mv.upper) : 1e9;
    if (lo > hi) return false;
    fresh.emplace_back(lo, hi);
  }

  if (main_ == nullptr) {
    root_bounds_ = std::move(fresh);
    root_model_ = base_;
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      // Clamping in the model (not just the solver) gives every integral
      // variable a finite lower bound, which is what makes its simplex
      // column warm-boundable (single shifted column).
      root_model_.set_bounds(VarId{int_vars_[k]}, root_bounds_[k].first,
                             root_bounds_[k].second);
    }
    main_ = std::make_unique<SimplexSolver>(root_model_, opt_.lp);
    heur_ = std::make_unique<SimplexSolver>(root_model_, opt_.lp);
    main_bounds_ = root_bounds_;
    heur_bounds_ = root_bounds_;
    arena_.clear();
    collect_pack_rows();
    return true;
  }

  // Session reuse: push exactly the data patched since the last search
  // into the retained root model and solvers.  Continuous bounds first
  // (integral ones go through the clamped vector below).
  for (std::size_t i = 0; i < base_.num_variables(); ++i) {
    const Variable& bv = base_.variables()[i];
    const Variable& rv = root_model_.variables()[i];
    if (bv.type != VarType::kContinuous) continue;
    if (bv.lower != rv.lower || bv.upper != rv.upper) {
      root_model_.set_bounds(VarId{i}, bv.lower, bv.upper);
      main_->set_bounds(VarId{i}, bv.lower, bv.upper);
      heur_->set_bounds(VarId{i}, bv.lower, bv.upper);
    }
  }
  for (std::size_t k = 0; k < int_vars_.size(); ++k) {
    if (fresh[k] != root_bounds_[k]) {
      root_bounds_[k] = fresh[k];
      root_model_.set_bounds(VarId{int_vars_[k]}, fresh[k].first,
                             fresh[k].second);
    }
  }
  // The previous search left the solvers at arbitrary node bounds; bring
  // them back to the (possibly patched) root.
  apply_bounds(*main_, main_bounds_, root_bounds_);
  apply_bounds(*heur_, heur_bounds_, root_bounds_);

  // Right-hand sides patched via Model::set_rhs since the last search.
  const auto& patched = base_.constraints();
  const auto& baked = root_model_.constraints();
  for (std::size_t r = 0; r < patched.size(); ++r) {
    if (patched[r].rhs != baked[r].rhs) {
      root_model_.set_rhs(r, patched[r].rhs);
      main_->set_rhs(r, patched[r].rhs);
      heur_->set_rhs(r, patched[r].rhs);
    }
  }

  // Bit-identity with a fresh instance: fresh solvers start without a
  // valid tableau, so the retained ones must forget theirs too.
  main_->invalidate();
  heur_->invalidate();
  arena_.clear();
  return true;
}

void BranchAndBound::collect_pack_rows() {
  if (pack_rows_collected_) return;
  pack_rows_collected_ = true;
  var_packs_.assign(int_vars_.size(), {});
  const auto& constraints = root_model_.constraints();
  for (std::size_t r = 0; r < constraints.size(); ++r) {
    const Constraint& c = constraints[r];
    if (c.relation == Relation::kGe || c.lhs.terms().size() < 2) continue;
    PackRow pr;
    pr.row = r;
    pr.eq = c.relation == Relation::kEq;
    bool ok = true;
    for (const auto& [v, a] : c.lhs.terms()) {
      const std::size_t k = int_k_of_[v];
      if (a != 1.0 || k == npos || root_bounds_[k].first < 0.0 ||
          root_bounds_[k].second > 1.0) {
        ok = false;
        break;
      }
      pr.ks.push_back(k);
    }
    if (!ok) continue;
    const std::size_t idx = pack_rows_.size();
    for (const std::size_t k : pr.ks) {
      var_packs_[k].push_back(idx);
    }
    pack_rows_.push_back(std::move(pr));
  }
}

std::size_t BranchAndBound::make_child(std::size_t parent_delta,
                                       const IntBounds& parent_bounds,
                                       std::size_t branch_k, double lo,
                                       double hi) {
  std::size_t num_fixed = 0;
  if (opt_.use_presolve && !pack_rows_.empty()) {
    // Fixpoint over the packing rows touching changed columns.  Bounds and
    // right-hand sides are small integers, so the tolerance only needs to
    // absorb summation noise.
    constexpr double eps = 1e-6;
    prop_bounds_ = parent_bounds;
    prop_bounds_[branch_k] = {lo, hi};
    prop_fixed_.clear();
    prop_queue_.clear();
    prop_in_queue_.assign(pack_rows_.size(), 0);
    const auto enqueue = [&](std::size_t k) {
      for (const std::size_t pr : var_packs_[k]) {
        if (!prop_in_queue_[pr]) {
          prop_in_queue_[pr] = 1;
          prop_queue_.push_back(pr);
        }
      }
    };
    enqueue(branch_k);
    for (std::size_t head = 0; head < prop_queue_.size(); ++head) {
      const PackRow& p = pack_rows_[prop_queue_[head]];
      prop_in_queue_[prop_queue_[head]] = 0;
      double sum_lo = 0.0;
      double sum_hi = 0.0;
      for (const std::size_t k : p.ks) {
        sum_lo += prop_bounds_[k].first;
        sum_hi += prop_bounds_[k].second;
      }
      const double rhs = root_model_.constraints()[p.row].rhs;
      if (sum_lo > rhs + eps || (p.eq && sum_hi < rhs - eps)) {
        ++node_prunes_;
        return npos;  // child infeasible: prune without an LP solve
      }
      if (sum_lo >= rhs - eps) {
        for (const std::size_t k : p.ks) {
          const auto [klo, khi] = prop_bounds_[k];
          if (klo < khi) {
            prop_bounds_[k] = {klo, klo};
            prop_fixed_.emplace_back(k, klo);
            enqueue(k);
          }
        }
      } else if (p.eq && sum_hi <= rhs + eps) {
        for (const std::size_t k : p.ks) {
          const auto [klo, khi] = prop_bounds_[k];
          if (klo < khi) {
            prop_bounds_[k] = {khi, khi};
            prop_fixed_.emplace_back(k, khi);
            enqueue(k);
          }
        }
      }
    }
    num_fixed = prop_fixed_.size();
    node_fixings_ += num_fixed;
  }
  arena_.push_back(NodeDelta{parent_delta, branch_k, lo, hi});
  std::size_t tail = arena_.size() - 1;
  for (std::size_t i = 0; i < num_fixed; ++i) {
    const auto [k, v] = prop_fixed_[i];
    arena_.push_back(NodeDelta{tail, k, v, v});
    tail = arena_.size() - 1;
  }
  return tail;
}

MilpResult BranchAndBound::run(const MilpOptions& options) {
  opt_ = options;
  MilpResult result;

  // Pure LP: no branching needed.
  if (int_vars_.empty()) {
    const LpSolution sol = solve_lp(base_, opt_.lp);
    result.lp_iterations = sol.iterations;
    result.status = sol.status;
    if (sol.status == SolveStatus::kOptimal) {
      result.has_incumbent = true;
      result.objective = sol.objective;
      result.best_bound = sol.objective;
      result.values = sol.values;
    }
    return result;
  }

  // Detect unboundedness on the true relaxation before branching: the
  // branching ranges clamp infinite integer domains, which would silently
  // turn an unbounded problem into a huge "optimal" one.  A fully
  // box-bounded model cannot have an unbounded relaxation, so the analysis
  // MILPs (all bounds finite) skip this extra cold LP entirely.
  bool all_finite = true;
  for (const Variable& v : base_.variables()) {
    if (!std::isfinite(v.lower) || !std::isfinite(v.upper)) {
      all_finite = false;
      break;
    }
  }
  if (!all_finite) {
    const LpSolution root = solve_lp(base_, opt_.lp);
    result.lp_iterations += root.iterations;
    if (root.status == SolveStatus::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (root.status == SolveStatus::kInfeasible) {
      result.status = SolveStatus::kInfeasible;
      return result;
    }
  }

  if (!sync_session()) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }

  try_seed_incumbent(result);

  std::priority_queue<OpenNode, std::vector<OpenNode>, NodeOrder> open(
      NodeOrder{maximize_});
  std::size_t next_id = 0;
  arena_.push_back(NodeDelta{});  // root: no delta
  open.push(OpenNode{maximize_ ? kInfinity : -kInfinity, next_id++, 0, 0});

  result.best_bound = worst_value();
  bool budget_exhausted = false;
  IntBounds node_bounds;
  // Plunge child of the node just expanded: processed before anything from
  // the queue, while the solver tableau still holds its parent's optimal
  // basis (its relaxation is then a textbook dual restart — one bound
  // tightened, a handful of pivots).
  std::optional<OpenNode> carry;
  // Trail of the most recent unexplored siblings along the plunge (LIFO,
  // capped at kTrailMax).  Backtracking to one of them keeps the tableau
  // close; the oldest entries overflow into the best-first queue.
  std::deque<OpenNode> trail;
  // Best bound among nodes discarded because they were already within the
  // configured relative gap of the incumbent (their subtree can improve the
  // answer by at most the tolerance).  Folded into the final dual bound so
  // best_bound stays valid.
  double dropped_bound = worst_value();
  bool dropped_any = false;

  while (carry.has_value() || !trail.empty() || !open.empty()) {
    if (result.nodes >= opt_.max_nodes) {
      budget_exhausted = true;
      break;
    }
    const bool plunged = carry.has_value();
    OpenNode node;
    if (plunged) {
      node = *carry;
      carry.reset();
    } else if (!trail.empty()) {
      node = trail.back();
      trail.pop_back();
    } else {
      node = open.top();
      open.pop();
    }

    // Global dual bound: with plunging the processed node no longer
    // dominates the open set, so take the best over it, the queue head, and
    // the trail (a short scan).
    double global_bound = node.bound;
    if (!open.empty() && better(open.top().bound, global_bound)) {
      global_bound = open.top().bound;
    }
    for (const OpenNode& t : trail) {
      if (better(t.bound, global_bound)) global_bound = t.bound;
    }

    // Terminate when the global dual bound is within the configured
    // relative gap of the incumbent — best_bound stays a valid dual bound.
    if (result.has_incumbent && opt_.relative_gap > 0.0) {
      const double tolerance =
          opt_.relative_gap * std::max(1.0, std::abs(result.objective));
      const bool within = maximize_
                              ? global_bound <= result.objective + tolerance
                              : global_bound >= result.objective - tolerance;
      if (within) {
        result.status = SolveStatus::kOptimal;
        result.gap_terminated = true;
        result.best_bound = dropped_any && better(dropped_bound, global_bound)
                                ? dropped_bound
                                : global_bound;
        return result;
      }
      // A plunged node already within the gap cannot change the final
      // answer beyond the tolerance: drop it instead of exploring its
      // subtree (best-first would never have reached it).  Its bound is
      // remembered so the dual bound stays honest.
      const bool node_within = maximize_
                                   ? node.bound <= result.objective + tolerance
                                   : node.bound >= result.objective - tolerance;
      if (node_within) {
        if (better(node.bound, dropped_bound)) dropped_bound = node.bound;
        dropped_any = true;
        ++result.nodes_pruned;
        continue;
      }
    }

    // A node whose inherited bound cannot beat the incumbent is dead.
    if (result.has_incumbent &&
        !better(node.bound, result.objective + (maximize_
                                                    ? opt_.absolute_gap
                                                    : -opt_.absolute_gap))) {
      ++result.nodes_pruned;
      continue;
    }

    ++result.nodes;
    bounds_for(node.delta, node_bounds);
    const std::size_t changed = apply_bounds(*main_, main_bounds_, node_bounds);
    // Plunged children (one delta from the tableau) and near jumps — e.g.
    // the sibling popped right after its brother's subtree collapsed —
    // reoptimize in situ; far jumps solve cold.
    const bool near = plunged || changed <= kWarmDeltaMax;
    const LpSolution relax =
        lp_solve(*main_, opt_.use_warm_start && near, result);

    if (relax.status == SolveStatus::kInfeasible) {
      continue;
    }
    if (relax.status == SolveStatus::kUnbounded) {
      // Relaxation unbounded at the root means the MILP is unbounded or
      // infeasible; report unbounded (callers treat it as "no finite bound").
      result.status = SolveStatus::kUnbounded;
      return result;
    }
    if (relax.status == SolveStatus::kIterationLimit) {
      result.status = SolveStatus::kIterationLimit;
      return result;
    }

    const double bound = relax.objective;
    if (result.has_incumbent &&
        !better(bound, result.objective + (maximize_ ? opt_.absolute_gap
                                                     : -opt_.absolute_gap))) {
      ++result.nodes_pruned;
      continue;  // cannot beat incumbent
    }

    const std::size_t branch_k = pick_branch_var(relax.values);
    if (branch_k == npos) {
      // Integral relaxation: snap and accept as incumbent.
      std::vector<double> snapped = relax.values;
      for (const std::size_t v : int_vars_) {
        snapped[v] = std::round(snapped[v]);
      }
      try_update_incumbent(snapped, bound, result);
      continue;
    }

    if (opt_.enable_rounding_heuristic) {
      if (result.nodes == 1) {
        dive_heuristic(node_bounds, result);
      } else if (result.nodes % opt_.heuristic_period == 0) {
        rounding_heuristic(node_bounds, relax.values, result);
        if (!result.has_incumbent &&
            result.nodes % (opt_.heuristic_period * 8) == 0) {
          dive_heuristic(node_bounds, result);
        }
      }
    }

    const std::size_t var = int_vars_[branch_k];
    const double x = relax.values[var];
    const auto [lo, hi] = node_bounds[branch_k];
    const double floor_x = std::floor(x);
    const double ceil_x = std::ceil(x);

    std::size_t down = npos;
    std::size_t up = npos;
    if (floor_x >= lo) {
      down = make_child(node.delta, node_bounds, branch_k, lo, floor_x);
      if (down == npos) ++result.nodes_pruned;
    }
    if (ceil_x <= hi) {
      up = make_child(node.delta, node_bounds, branch_k, ceil_x, hi);
      if (up == npos) ++result.nodes_pruned;
    }
    // Guided plunge: dive into the child on the side the relaxation value
    // rounds to (the one more likely to stay feasible and near-optimal).
    // The sibling joins the trail for a nearby backtrack, displacing the
    // oldest trail entry into the best-first queue when full.
    const bool go_down = up == npos || (down != npos && x - floor_x <= 0.5);
    const std::size_t dive = go_down ? down : up;
    const std::size_t sibling = go_down ? up : down;
    if (sibling != npos) {
      trail.push_back(OpenNode{bound, next_id++, node.depth + 1, sibling});
      if (trail.size() > kTrailMax) {
        open.push(trail.front());
        trail.pop_front();
      }
    }
    if (dive != npos) {
      carry = OpenNode{bound, next_id++, node.depth + 1, dive};
    }
  }

  // Polish: re-derive the incumbent's objective and continuous completion
  // with one clean cold solve at the fixed integral assignment.  Warm-path
  // extractions carry tableau round-off that depends on the exploration
  // path; the reported value must not (callers ceil() these bounds, which
  // amplifies even ulp-level noise into a full tick).  A cold solve on the
  // all-integer analysis models is numerically exact in practice.
  if (result.has_incumbent && heur_ != nullptr) {
    IntBounds fixed(int_vars_.size());
    for (std::size_t k = 0; k < int_vars_.size(); ++k) {
      const double v = result.values[int_vars_[k]];
      fixed[k] = {v, v};
    }
    apply_bounds(*heur_, heur_bounds_, fixed);
    LpSolution polish = heur_->solve();
    result.lp_iterations += polish.iterations;
    if (polish.status == SolveStatus::kOptimal) {
      result.objective = polish.objective;
      result.values = std::move(polish.values);
      for (const std::size_t v : int_vars_) {
        result.values[v] = std::round(result.values[v]);
      }
    }
  }

  // Final status & dual bound.
  if (budget_exhausted) {
    result.status = SolveStatus::kNodeLimit;
    // Best-first queue: the strongest open bound is the queue head (no
    // drain needed), except that an unconsumed plunge child and the trail
    // also count as open nodes.
    double open_bound = open.empty() ? worst_value() : open.top().bound;
    if (carry.has_value() && better(carry->bound, open_bound)) {
      open_bound = carry->bound;
    }
    for (const OpenNode& t : trail) {
      if (better(t.bound, open_bound)) open_bound = t.bound;
    }
    if (dropped_any && better(dropped_bound, open_bound)) {
      open_bound = dropped_bound;
    }
    result.best_bound = result.has_incumbent
                            ? (better(open_bound, result.objective)
                                   ? open_bound
                                   : result.objective)
                            : open_bound;
    if (!std::isfinite(result.best_bound)) {
      // Root never solved: no finite dual bound available.
      result.best_bound = maximize_ ? kInfinity : -kInfinity;
    }
    return result;
  }

  if (result.has_incumbent) {
    result.status = SolveStatus::kOptimal;
    result.best_bound = result.objective;
    if (dropped_any) {
      // Some within-gap subtrees were discarded unexplored: the answer is
      // gap-optimal, not proven exact, and the dual bound reflects them.
      result.gap_terminated = true;
      if (better(dropped_bound, result.best_bound)) {
        result.best_bound = dropped_bound;
      }
    }
  } else {
    result.status = SolveStatus::kInfeasible;
  }
  return result;
}

/// Structural equality of two presolve outputs: same surviving columns
/// (types, term vectors, objective — bounds and right-hand sides excluded,
/// those are patchable in place) and the same original->reduced maps.  When
/// true, a retained reduced-model session can absorb the new output as
/// bound/rhs patches instead of being rebuilt.
bool same_structure(const Model& a, const presolve::PostsolveMap& am,
                    const Model& b, const presolve::PostsolveMap& bm) {
  if (am.col_map != bm.col_map || am.row_map != bm.row_map) return false;
  if (a.num_variables() != b.num_variables() ||
      a.num_constraints() != b.num_constraints()) {
    return false;
  }
  for (std::size_t i = 0; i < a.num_variables(); ++i) {
    if (a.variables()[i].type != b.variables()[i].type) return false;
  }
  for (std::size_t r = 0; r < a.num_constraints(); ++r) {
    const Constraint& ca = a.constraints()[r];
    const Constraint& cb = b.constraints()[r];
    if (ca.relation != cb.relation || ca.lhs.terms() != cb.lhs.terms()) {
      return false;
    }
  }
  // The objective constant carries the fixed columns' contribution and is
  // baked into the session's root-model copy — any change forces a rebuild.
  return a.objective_sense() == b.objective_sense() &&
         a.objective().terms() == b.objective().terms() &&
         a.objective().constant() == b.objective().constant();
}

}  // namespace

struct MilpSolver::Impl {
  explicit Impl(const Model& model) : base(model) {}

  const Model& base;
  /// Search engine on the pristine model (options.use_presolve == false).
  std::unique_ptr<BranchAndBound> direct;
  /// Presolve session: the reduced model lives behind a stable address so
  /// the inner BranchAndBound can keep referencing it across solves.
  std::unique_ptr<Model> reduced;
  presolve::PostsolveMap map;
  std::unique_ptr<BranchAndBound> session;

  // Counter snapshots so each solve emits per-run telemetry deltas (the
  // underlying counters are cumulative over the session).
  std::size_t deltas_seen = 0;
  std::size_t warm_seen = 0;
  std::size_t fallbacks_seen = 0;
  std::size_t fixings_seen = 0;
  std::size_t prunes_seen = 0;

  /// Counters absorbed from presolve sessions torn down by a structural
  /// rebuild.  total() folds these in so the lifetime totals — and with
  /// them the per-solve deltas against the *_seen snapshots — stay
  /// monotone across session resets instead of wrapping around.
  struct Retired {
    std::size_t deltas = 0;
    std::size_t warm = 0;
    std::size_t fallbacks = 0;
    std::size_t fixings = 0;
    std::size_t prunes = 0;

    void absorb(const BranchAndBound& bb) {
      deltas += bb.bound_deltas_applied();
      warm += bb.warm_solves();
      fallbacks += bb.warm_fallbacks();
      fixings += bb.node_fixings();
      prunes += bb.node_prunes();
    }
  };
  Retired retired;

  std::size_t total(std::size_t (BranchAndBound::*get)() const,
                    std::size_t retired_part) const {
    std::size_t sum = retired_part;
    if (direct) sum += ((*direct).*get)();
    if (session) sum += ((*session).*get)();
    return sum;
  }

  MilpResult solve_with_presolve(const MilpOptions& options);
};

MilpResult MilpSolver::Impl::solve_with_presolve(const MilpOptions& options) {
  namespace telemetry = support::telemetry;
  presolve::Presolved pre;
  {
    const telemetry::ScopedTimer timer("lp.presolve.run");
    pre = presolve::presolve(base);
  }
  MilpResult result;
  if (pre.infeasible) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }
  if (pre.map.reduced_cols() == 0) {
    // Everything fixed: presolve solved the model outright.
    result.values = pre.map.postsolve_primal({});
    if (!base.is_feasible(result.values, options.lp.feasibility_tol * 10.0)) {
      result.status = SolveStatus::kInfeasible;
      result.values.clear();
      return result;
    }
    result.status = SolveStatus::kOptimal;
    result.has_incumbent = true;
    result.objective = base.evaluate(base.objective(), result.values);
    result.best_bound = result.objective;
    return result;
  }

  if (session != nullptr &&
      same_structure(*reduced, map, pre.reduced, pre.map)) {
    // Same reduction shape: patch the retained reduced model in place; the
    // inner session resyncs exactly the changed bounds / right-hand sides.
    for (std::size_t i = 0; i < reduced->num_variables(); ++i) {
      const Variable& fresh = pre.reduced.variables()[i];
      const Variable& held = reduced->variables()[i];
      if (fresh.lower != held.lower || fresh.upper != held.upper) {
        reduced->set_bounds(VarId{i}, fresh.lower, fresh.upper);
      }
    }
    for (std::size_t r = 0; r < reduced->num_constraints(); ++r) {
      if (pre.reduced.constraints()[r].rhs != reduced->constraints()[r].rhs) {
        reduced->set_rhs(r, pre.reduced.constraints()[r].rhs);
      }
    }
    map = std::move(pre.map);
    telemetry::count("lp.presolve.session_reuses");
  } else {
    if (session) retired.absorb(*session);
    session.reset();
    reduced = std::make_unique<Model>(std::move(pre.reduced));
    map = std::move(pre.map);
    session = std::make_unique<BranchAndBound>(*reduced);
    telemetry::count("lp.presolve.session_rebuilds");
  }

  MilpOptions ropt = options;
  if (!options.branch_priority.empty()) {
    ropt.branch_priority = map.restrict_priorities(options.branch_priority);
  }
  ropt.start_values.clear();
  if (options.start_values.size() == map.original_cols) {
    std::vector<double> restricted;
    if (map.restrict_primal(options.start_values, options.integrality_tol,
                            &restricted)) {
      ropt.start_values = std::move(restricted);
    }
  }

  result = session->run(ropt);
  if (result.has_incumbent) {
    result.values = map.postsolve_primal(result.values);
  }
  return result;
}

MilpSolver::MilpSolver(const Model& model)
    : impl_(std::make_unique<Impl>(model)) {}

MilpSolver::~MilpSolver() = default;

MilpResult MilpSolver::solve(const MilpOptions& options) {
  namespace telemetry = support::telemetry;
  const telemetry::ScopedTimer timer("milp.solve");
  Impl& im = *impl_;
  MilpResult result;
  if (options.use_presolve) {
    result = im.solve_with_presolve(options);
  } else {
    if (im.direct == nullptr) {
      im.direct = std::make_unique<BranchAndBound>(im.base);
    }
    result = im.direct->run(options);
  }
  const std::size_t deltas = im.total(&BranchAndBound::bound_deltas_applied,
                                      im.retired.deltas);
  const std::size_t warm =
      im.total(&BranchAndBound::warm_solves, im.retired.warm);
  const std::size_t fallbacks =
      im.total(&BranchAndBound::warm_fallbacks, im.retired.fallbacks);
  const std::size_t fixings =
      im.total(&BranchAndBound::node_fixings, im.retired.fixings);
  const std::size_t prunes =
      im.total(&BranchAndBound::node_prunes, im.retired.prunes);
  if (telemetry::enabled()) {
    telemetry::count("milp.solves");
    telemetry::count("milp.nodes_explored", result.nodes);
    telemetry::count("milp.nodes_pruned", result.nodes_pruned);
    telemetry::count("milp.lp_iterations", result.lp_iterations);
    telemetry::count("milp.bound_deltas_applied", deltas - im.deltas_seen);
    telemetry::count("milp.warm_start_hits",
                     (warm - im.warm_seen) - (fallbacks - im.fallbacks_seen));
    telemetry::count("milp.warm_start_fallbacks",
                     fallbacks - im.fallbacks_seen);
    telemetry::count("lp.presolve.node_fixings", fixings - im.fixings_seen);
    telemetry::count("lp.presolve.node_prunes", prunes - im.prunes_seen);
    if (result.gap_terminated) {
      telemetry::count("milp.gap_terminations");
    }
    if (result.status == SolveStatus::kNodeLimit) {
      telemetry::count("milp.node_limit_hits");
    }
  }
  im.deltas_seen = deltas;
  im.warm_seen = warm;
  im.fallbacks_seen = fallbacks;
  im.fixings_seen = fixings;
  im.prunes_seen = prunes;
  return result;
}

MilpResult solve_milp(const Model& model, const MilpOptions& options) {
  MilpSolver session(model);
  return session.solve(options);
}

}  // namespace mcs::lp
