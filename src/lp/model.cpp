#include "lp/model.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace mcs::lp {

void LinExpr::add_term(VarId v, double coef) {
  MCS_REQUIRE(v.index != static_cast<std::size_t>(-1),
              "add_term: invalid variable");
  terms_.emplace_back(v.index, coef);
}

LinExpr& LinExpr::operator+=(const LinExpr& other) {
  terms_.insert(terms_.end(), other.terms_.begin(), other.terms_.end());
  constant_ += other.constant_;
  return *this;
}

LinExpr& LinExpr::operator-=(const LinExpr& other) {
  for (const auto& [var, coef] : other.terms_) {
    terms_.emplace_back(var, -coef);
  }
  constant_ -= other.constant_;
  return *this;
}

LinExpr& LinExpr::operator*=(double factor) {
  for (auto& [var, coef] : terms_) {
    coef *= factor;
  }
  constant_ *= factor;
  return *this;
}

LinExpr LinExpr::normalized() const {
  LinExpr result;
  result.constant_ = constant_;
  if (terms_.empty()) {
    return result;
  }
  auto sorted = terms_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  constexpr double kDropTol = 0.0;  // keep exact zeros out, nothing else
  std::size_t current = sorted.front().first;
  double acc = 0.0;
  for (const auto& [var, coef] : sorted) {
    if (var != current) {
      if (std::abs(acc) > kDropTol) {
        result.terms_.emplace_back(current, acc);
      }
      current = var;
      acc = 0.0;
    }
    acc += coef;
  }
  if (std::abs(acc) > kDropTol) {
    result.terms_.emplace_back(current, acc);
  }
  return result;
}

LinExpr term(VarId v, double coef) {
  LinExpr expr;
  expr.add_term(v, coef);
  return expr;
}

VarId Model::add_continuous(double lower, double upper, std::string name) {
  MCS_REQUIRE(lower <= upper, "add_continuous: lower > upper");
  MCS_REQUIRE(!std::isnan(lower) && !std::isnan(upper),
              "add_continuous: NaN bound");
  variables_.push_back(
      {lower, upper, VarType::kContinuous, std::move(name)});
  return VarId{variables_.size() - 1};
}

VarId Model::add_binary(std::string name) {
  variables_.push_back({0.0, 1.0, VarType::kBinary, std::move(name)});
  return VarId{variables_.size() - 1};
}

VarId Model::add_integer(double lower, double upper, std::string name) {
  MCS_REQUIRE(lower <= upper, "add_integer: lower > upper");
  variables_.push_back({lower, upper, VarType::kInteger, std::move(name)});
  return VarId{variables_.size() - 1};
}

void Model::add_constraint(const LinExpr& lhs, Relation relation,
                           const LinExpr& rhs, std::string name) {
  LinExpr combined = lhs;
  combined -= rhs;
  LinExpr normal = combined.normalized();
  check_expr(normal);
  Constraint c;
  c.relation = relation;
  c.rhs = -normal.constant();
  c.name = std::move(name);
  // Store lhs with zero constant; the constant moved to rhs.
  LinExpr stripped;
  for (const auto& [var, coef] : normal.terms()) {
    stripped.add_term(VarId{var}, coef);
  }
  c.lhs = std::move(stripped);
  constraints_.push_back(std::move(c));
}

void Model::set_objective(Sense sense, const LinExpr& objective) {
  LinExpr normal = objective.normalized();
  check_expr(normal);
  sense_ = sense;
  objective_ = std::move(normal);
}

void Model::set_bounds(VarId v, double lower, double upper) {
  MCS_REQUIRE(v.index < variables_.size(), "set_bounds: unknown variable");
  MCS_REQUIRE(lower <= upper, "set_bounds: lower > upper");
  variables_[v.index].lower = lower;
  variables_[v.index].upper = upper;
}

void Model::set_rhs(std::size_t constraint_index, double rhs) {
  MCS_REQUIRE(constraint_index < constraints_.size(),
              "set_rhs: unknown constraint");
  MCS_REQUIRE(std::isfinite(rhs), "set_rhs: rhs must be finite");
  constraints_[constraint_index].rhs = rhs;
}

const Variable& Model::variable(VarId v) const {
  MCS_REQUIRE(v.index < variables_.size(), "variable: unknown variable");
  return variables_[v.index];
}

bool Model::has_integer_variables() const noexcept {
  return std::any_of(variables_.begin(), variables_.end(),
                     [](const Variable& v) {
                       return v.type != VarType::kContinuous &&
                              v.lower != v.upper;
                     });
}

double Model::evaluate(const LinExpr& expr,
                       const std::vector<double>& assignment) const {
  MCS_REQUIRE(assignment.size() == variables_.size(),
              "evaluate: assignment size mismatch");
  double value = expr.constant();
  for (const auto& [var, coef] : expr.terms()) {
    value += coef * assignment[var];
  }
  return value;
}

bool Model::is_feasible(const std::vector<double>& assignment,
                        double eps) const {
  if (assignment.size() != variables_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < variables_.size(); ++i) {
    const Variable& v = variables_[i];
    if (assignment[i] < v.lower - eps || assignment[i] > v.upper + eps) {
      return false;
    }
    if (v.type != VarType::kContinuous &&
        std::abs(assignment[i] - std::round(assignment[i])) > eps) {
      return false;
    }
  }
  for (const Constraint& c : constraints_) {
    const double lhs = evaluate(c.lhs, assignment);
    switch (c.relation) {
      case Relation::kLe:
        if (lhs > c.rhs + eps) return false;
        break;
      case Relation::kGe:
        if (lhs < c.rhs - eps) return false;
        break;
      case Relation::kEq:
        if (std::abs(lhs - c.rhs) > eps) return false;
        break;
    }
  }
  return true;
}

void Model::check_expr(const LinExpr& expr) const {
  for (const auto& [var, coef] : expr.terms()) {
    MCS_REQUIRE(var < variables_.size(),
                "expression references unknown variable");
    MCS_REQUIRE(std::isfinite(coef), "expression has non-finite coefficient");
  }
}

}  // namespace mcs::lp
