// Branch & bound MILP solver over the bounded-variable simplex.
//
// Exactness & safety contract: when the node budget is not exhausted the
// returned incumbent is a true optimum of the model.  When the budget runs
// out, `best_bound` is still a valid dual bound (an upper bound for
// maximization problems, lower for minimization); the schedulability
// analysis relies on this to stay safe under solver budget limits
// (DESIGN.md §5.7).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "lp/model.hpp"
#include "lp/simplex.hpp"

namespace mcs::lp {

struct MilpOptions {
  SimplexOptions lp;
  std::size_t max_nodes = 200000;
  double integrality_tol = 1e-6;
  /// Prune nodes whose relaxation bound does not beat the incumbent by more
  /// than this absolute amount.
  double absolute_gap = 1e-7;
  /// Terminate once the best open bound is within this relative distance of
  /// the incumbent (0 = prove optimality).  On gap termination the result
  /// status is kOptimal-like with `best_bound` still a valid dual bound —
  /// consumers needing safety must read best_bound, not objective.
  double relative_gap = 0.0;
  bool enable_rounding_heuristic = true;
  /// Run the fix-and-complete rounding heuristic every this many nodes.
  std::size_t heuristic_period = 64;
  /// Optional per-variable branching priorities (indexed by VarId).  Among
  /// fractional integral variables, the highest priority class is branched
  /// first (most-fractional within the class).  Empty = uniform priority.
  std::vector<int> branch_priority;
  /// Reoptimize each node's relaxation with the dual simplex from its
  /// parent's optimal basis instead of solving cold.  Identical results up
  /// to tolerances (the warm path falls back to a cold solve on trouble);
  /// off mainly for differential testing.
  bool use_warm_start = true;
  /// Run the presolve reduction pipeline (lp/presolve.hpp) on the model
  /// before branch & bound and propagate packing-row implications at node
  /// creation.  Exact: reductions preserve the MILP optimum, and results
  /// are postsolved back to the original variable space, so callers see
  /// the same contract either way.  Off mainly for differential testing
  /// (tests/test_lp_presolve.cpp compares both paths at gap 0).
  bool use_presolve = true;
  /// Optional starting incumbent, one value per model variable.  Checked
  /// for bound/constraint feasibility and integrality before adoption;
  /// anything infeasible is silently ignored.  Lets the analysis fixpoint
  /// loop carry the previous round's solution in so pruning starts
  /// immediately.
  std::vector<double> start_values;
};

struct MilpResult {
  SolveStatus status = SolveStatus::kNodeLimit;
  bool has_incumbent = false;
  /// Incumbent objective in the model's sense (valid iff has_incumbent).
  double objective = 0.0;
  /// Valid dual bound on the true optimum (always set unless infeasible /
  /// unbounded): >= optimum for maximization, <= for minimization.
  double best_bound = 0.0;
  /// Incumbent assignment, one value per model variable.
  std::vector<double> values;
  std::size_t nodes = 0;
  /// Open nodes discarded without an LP solve because their inherited bound
  /// could not beat the incumbent.
  std::size_t nodes_pruned = 0;
  std::size_t lp_iterations = 0;
  /// True when the search stopped at options.relative_gap rather than
  /// proving optimality; objective and best_bound then differ by at most
  /// that factor.
  bool gap_terminated = false;
};

/// Solves `model` to optimality (or budget exhaustion).  The model is not
/// modified.  Deterministic for a fixed model and options.
MilpResult solve_milp(const Model& model, const MilpOptions& options = {});

/// Reusable branch & bound session bound to one model.
///
/// `solve_milp` pays per call for a clamped copy of the model and two
/// `SimplexSolver` tableaus; a session keeps all three alive.  Between
/// solves the caller may patch the bound model in place — variable bounds
/// via `Model::set_bounds`, right-hand sides via `Model::set_rhs` — and
/// each `solve()` resyncs exactly the patched data into the retained
/// solvers before searching.  The variable set, constraint structure,
/// coefficients, and objective must not change over the session (the
/// analysis layer's formulation cache guarantees this: a cached delay MILP
/// is only ever re-targeted through bound/rhs patches).
///
/// Determinism: a session `solve()` is bit-identical to a fresh
/// `solve_milp` on the same model state and options — retained tableaus
/// are invalidated at entry so the search never depends on where the
/// previous solve left off.  The simplex options of the *first* solve
/// configure the retained solvers; later calls reuse them.
class MilpSolver {
 public:
  explicit MilpSolver(const Model& model);
  ~MilpSolver();
  MilpSolver(const MilpSolver&) = delete;
  MilpSolver& operator=(const MilpSolver&) = delete;

  MilpResult solve(const MilpOptions& options = {});

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcs::lp
