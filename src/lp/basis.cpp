#include "lp/basis.hpp"

#include <cmath>

namespace mcs::lp {

bool EtaFile::append(const double* alpha, std::size_t pivot_row,
                     double min_pivot) {
  const double pivot = alpha[pivot_row];
  if (std::abs(pivot) <= min_pivot) {
    return false;
  }
  const double inv = 1.0 / pivot;
  // A pure-diagonal eta with pivot 1 is the identity transform; skipping it
  // keeps the initial slack basis (an all +1 diagonal) free of charge.
  bool identity = inv == 1.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (r != pivot_row && alpha[r] != 0.0) {
      identity = false;
      entry_row_.push_back(static_cast<std::uint32_t>(r));
      entry_value_.push_back(alpha[r]);
    }
  }
  if (identity) {
    return true;
  }
  pivot_row_.push_back(static_cast<std::uint32_t>(pivot_row));
  inv_pivot_.push_back(inv);
  entry_start_.push_back(entry_row_.size());
  return true;
}

void EtaFile::ftran(double* x) const {
  const std::size_t n = eta_count();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t p = pivot_row_[k];
    const double xp = x[p];
    if (xp == 0.0) {
      continue;  // the transform only reads/writes through x[p]
    }
    const double t = xp * inv_pivot_[k];
    const std::size_t end = entry_start_[k + 1];
    for (std::size_t e = entry_start_[k]; e < end; ++e) {
      x[entry_row_[e]] -= entry_value_[e] * t;
    }
    x[p] = t;
  }
}

void EtaFile::btran(double* y) const {
  for (std::size_t k = eta_count(); k-- > 0;) {
    const std::size_t p = pivot_row_[k];
    double s = y[p];
    const std::size_t end = entry_start_[k + 1];
    for (std::size_t e = entry_start_[k]; e < end; ++e) {
      s -= entry_value_[e] * y[entry_row_[e]];
    }
    y[p] = s * inv_pivot_[k];
  }
}

}  // namespace mcs::lp
