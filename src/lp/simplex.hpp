// Two-phase primal simplex with bounded variables (dense tableau).
//
// Scope: the LP relaxations produced by the schedulability analysis are
// small (hundreds of rows/columns), so a dense full-tableau implementation
// with incremental reduced costs is both simple and fast enough.  General
// features supported: free variables, one- or two-sided bounds, <=, >=, =
// rows, minimization and maximization, bound-flip (nonbasic upper bound)
// pivots, Dantzig pricing with a Bland's-rule fallback for anti-cycling.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace mcs::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  ///< simplex gave up; solution values are unreliable
  kNodeLimit,       ///< (MILP only) branch & bound budget exhausted
};

const char* to_string(SolveStatus status) noexcept;

struct SimplexOptions {
  double feasibility_tol = 1e-7;   ///< row / bound violation tolerance
  double reduced_cost_tol = 1e-9;  ///< optimality tolerance
  double pivot_tol = 1e-8;         ///< minimum admissible pivot magnitude
  std::size_t max_iterations = 200000;
  /// After this many pivots, switch from Dantzig to Bland's rule
  /// (guarantees finite termination under degeneracy).
  std::size_t bland_threshold = 5000;
  /// Recompute the reduced-cost row from scratch every this many pivots to
  /// curb error accumulation in the incremental update.
  std::size_t refactor_period = 256;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the *model's* sense; meaningful only when kOptimal.
  double objective = 0.0;
  /// One value per model variable; meaningful only when kOptimal.
  std::vector<double> values;
  std::size_t iterations = 0;
};

/// Solves the continuous relaxation of `model` (integrality ignored).
LpSolution solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace mcs::lp
