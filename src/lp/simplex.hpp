// Two-phase primal simplex with bounded variables, plus a reusable solver
// object supporting dual-simplex warm restarts.  Two interchangeable
// kernels sit behind the same interface (SimplexOptions::kernel): a sparse
// revised simplex (CSC matrix + product-form-inverse basis, Devex pricing,
// bound-flipping dual ratio test — the default) and the original dense
// full-tableau kernel, retained as the differential-testing reference.
//
// General features supported: free variables, one- or two-sided bounds,
// <=, >=, = rows, minimization and maximization, bound-flip (nonbasic
// upper bound) pivots, and a Bland's-rule fallback for anti-cycling.
//
// Warm restarts (the branch & bound hot path): a `SimplexSolver` keeps its
// pivoted tableau alive between solves.  After `set_bounds` changes the
// variable bounds, `solve_warm` reoptimizes with the dual simplex from the
// current (or a supplied parent) basis — bound changes never disturb dual
// feasibility, so reoptimization typically takes a handful of pivots where
// a cold solve pays a full phase 1 + phase 2.  Correctness never depends on
// the warm path: the dual phase only restores primal feasibility and the
// closing primal phase proves optimality; any numerical trouble falls back
// to a cold solve from scratch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace mcs::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  ///< simplex gave up; solution values are unreliable
  kNodeLimit,       ///< (MILP only) branch & bound budget exhausted
};

const char* to_string(SolveStatus status) noexcept;

/// Simplex engine selection.  Both kernels implement the identical
/// contract (cold solves, dual warm restarts, basis snapshots, bound/rhs
/// patching, primal+dual certificates); they differ only in the inner
/// representation:
///  * kSparse — revised simplex on a compressed-sparse-column matrix with a
///    product-form-inverse (eta-file) basis, Devex pricing with partial
///    pricing, and a bound-flipping dual ratio test.  Default: the delay
///    MILPs are highly sparse and the dense tableau pays O(rows*cols) per
///    pivot for matrices that are ~1% nonzero.
///  * kDense — the original full-tableau kernel, kept compiled as the
///    differential-testing reference and for pathologically dense models.
enum class SimplexKernel : std::uint8_t { kSparse, kDense };

struct SimplexOptions {
  double feasibility_tol = 1e-7;   ///< row / bound violation tolerance
  double reduced_cost_tol = 1e-9;  ///< optimality tolerance
  double pivot_tol = 1e-8;         ///< minimum admissible pivot magnitude
  SimplexKernel kernel = SimplexKernel::kSparse;
  std::size_t max_iterations = 200000;
  /// After this many pivots, switch from Dantzig to Bland's rule
  /// (guarantees finite termination under degeneracy).
  std::size_t bland_threshold = 5000;
  /// Recompute the reduced-cost row from scratch every this many pivots to
  /// curb error accumulation in the incremental update.
  std::size_t refactor_period = 256;
  /// Force a cold re-solve after this many consecutive warm solves so that
  /// round-off accumulated in the pivoted right-hand side cannot drift
  /// unbounded across a long branch & bound run.
  std::size_t warm_refresh_period = 512;
  /// Pivot budget for a single warm attempt (dual + closing primal).  A
  /// healthy warm restart takes a handful of pivots; one that does not is
  /// cheaper to abandon for a cold solve than to grind out.  0 = auto
  /// (scaled to the model's row count).
  std::size_t warm_iteration_budget = 0;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kIterationLimit;
  /// Objective in the *model's* sense; meaningful only when kOptimal.
  double objective = 0.0;
  /// One value per model variable; meaningful only when kOptimal.
  std::vector<double> values;
  std::size_t iterations = 0;
};

/// Opaque snapshot of a simplex basis: the nonbasic status of every internal
/// column plus the basic column of each row.  Obtained from
/// `SimplexSolver::basis()` after a solve and fed to `solve_warm` to start a
/// child problem from its parent-optimal basis (branch & bound delta nodes).
struct Basis {
  std::vector<std::uint8_t> status;  ///< per internal column
  std::vector<std::uint32_t> basic;  ///< basic column per row
  bool empty() const noexcept { return basic.empty(); }
};

/// Cumulative per-solver counters (monotone over the solver's lifetime).
struct SimplexStats {
  std::size_t cold_solves = 0;
  std::size_t warm_solves = 0;
  /// Warm attempts that had to degrade to a cold solve (dual stall /
  /// iteration trouble).  Scheduled refreshes are counted as cold solves,
  /// not fallbacks.
  std::size_t warm_fallbacks = 0;
  std::size_t cold_pivots = 0;
  std::size_t warm_pivots = 0;
  /// Basis refactorizations (kSparse: eta-file rebuilds; kDense: 0).
  std::size_t refactorizations = 0;
  /// Cumulative off-diagonal eta entries appended to the basis inverse.
  std::size_t eta_nnz = 0;
  /// Nonbasic bound-to-bound moves that did not change the basis (primal
  /// entering flips plus dual long-step flips).
  std::size_t bound_flips = 0;
  /// Devex reference-framework resets (weight overflow; kDense: 0).
  std::size_t devex_resets = 0;
  /// Columns excluded from pricing scans because equal bounds (or a frozen
  /// slack/artificial) pin them; counted once per pricing-list rebuild.
  std::size_t fixed_cols_skipped = 0;
};

/// Reusable simplex instance bound to one model.  The model reference must
/// outlive the solver; the solver shadows the model's variable bounds (via
/// `set_bounds`) without mutating the model itself.
class SimplexSolver {
 public:
  explicit SimplexSolver(const Model& model,
                         const SimplexOptions& options = {});
  ~SimplexSolver();
  SimplexSolver(const SimplexSolver&) = delete;
  SimplexSolver& operator=(const SimplexSolver&) = delete;

  /// Overrides the bounds of `v` for subsequent solves.  Precondition: the
  /// variable has a finite lower bound in the model and `lower` is finite
  /// with `lower <= upper` (always true for the branch & bound use case —
  /// integral variables are clamped to finite ranges at the root).
  void set_bounds(VarId v, double lower, double upper);

  /// Overrides the (normalized) right-hand side of constraint `row` for
  /// subsequent solves.  The solver bakes constraint data at construction,
  /// so a caller that patches the model via `Model::set_rhs` must mirror
  /// the change here; the next solve then starts cold from the patched
  /// data (a pending warm tableau is discarded — RHS changes invalidate
  /// the pivoted right-hand side wholesale, unlike bound shifts).
  void set_rhs(std::size_t row, double rhs);

  /// Discards the retained tableau so the next solve starts cold from the
  /// current (possibly patched) data.  Session users call this to make a
  /// solve independent of where the previous one left off — required for
  /// bit-reproducible results when a solver is reused across `MilpSolver`
  /// runs.
  void invalidate();

  /// Cold solve: rebuilds the tableau from scratch (phase 1 + phase 2).
  LpSolution solve();

  /// Warm solve: dual reoptimization from `parent` (when given and
  /// loadable) or from the solver's current basis, then a primal cleanup
  /// phase.  Equivalent to solve() up to tolerances; falls back to a cold
  /// solve automatically when the warm path stalls.
  LpSolution solve_warm(const Basis* parent = nullptr);

  /// Snapshot of the current basis (valid after any completed solve).
  Basis basis() const;

  const SimplexStats& stats() const noexcept;

  /// Kernel interface (internal; defined in simplex_impl.hpp).
  struct Impl;

 private:
  std::unique_ptr<Impl> impl_;
};

/// Solves the continuous relaxation of `model` (integrality ignored).
LpSolution solve_lp(const Model& model, const SimplexOptions& options = {});

}  // namespace mcs::lp
