// CPLEX-LP-format reader for the subset lp_writer emits.
//
// Parses Maximize/Minimize, `Subject To`, `Bounds`, `Generals`,
// `Binaries`, `End` with `\`-comments, case-insensitive section keywords,
// and expressions in the spaced `[+|-] coef name` form the writer
// produces.  Round-trip contract: for any model M,
// `read_lp_format(to_lp_format(M))` is structurally identical to M up to
// name sanitization — column for column, row for row — which
// check::diff_models verifies with `compare_names = false`.  Column order
// is recovered from the `Bounds` section (the writer enumerates every
// variable there in column order); names met only in expressions are
// appended in first-appearance order, so foreign LP files load too.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "lp/model.hpp"

namespace mcs::lp {

/// Thrown on malformed input; the message carries the 1-based line number.
class LpParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an LP-format document.  Throws LpParseError on malformed input.
Model read_lp_format(std::istream& in);

/// Convenience overload for in-memory documents.
Model read_lp_format(const std::string& text);

}  // namespace mcs::lp
