// Greedy latency-sensitive marking (paper §VI).
//
// Start with every task NLS.  Analyze all tasks; if some task misses its
// deadline, mark it LS (unless it already is — then the set is deemed
// unschedulable) and re-analyze everything, since LS membership changes the
// constraints of every other task.  Terminates after at most n promotions.
#pragma once

#include <vector>

#include "analysis/response_time.hpp"
#include "rt/task.hpp"

namespace mcs::analysis {

struct ProposedResult {
  bool schedulable = false;
  /// Final LS marking found by the greedy algorithm.
  std::vector<bool> ls_flags;
  /// Per-task bounds from the final analysis round.
  std::vector<TaskBoundResult> per_task;
  std::size_t rounds = 0;
  bool any_relaxation_fallback = false;
  /// True when any analyzed bound degraded to the LP relaxation because
  /// the request's SolveBudget ran out (analysis/budget.hpp).
  bool degraded = false;
  std::size_t total_milp_nodes = 0;
};

/// Schedulability under the protocol of [3]: the same MILP analysis with
/// LS semantics disabled for every task (paper Conclusions; DESIGN.md §5.3).
struct WpResult {
  bool schedulable = false;
  std::vector<TaskBoundResult> per_task;
  bool any_relaxation_fallback = false;
  /// True when any bound degraded under an exceeded SolveBudget.
  bool degraded = false;
  std::size_t total_milp_nodes = 0;
};

/// Schedulability of `tasks` under the proposed protocol with greedy LS
/// assignment.  Existing latency_sensitive flags on the input are ignored
/// (the algorithm starts all-NLS, per the paper).
///
/// `wp_round0`, when given, must be the WP analysis of this same `tasks`
/// under compatible options; the greedy loop adopts it as its round 0
/// instead of recomputing (the all-NLS round-0 formulation coincides with
/// the WP one).  See AnalysisEngine::analyze_proposed.
ProposedResult analyze_proposed(const rt::TaskSet& tasks,
                                const AnalysisOptions& options = {},
                                const WpResult* wp_round0 = nullptr);

WpResult analyze_wp(const rt::TaskSet& tasks,
                    const AnalysisOptions& options = {});

}  // namespace mcs::analysis
