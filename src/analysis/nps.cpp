#include "analysis/nps.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::analysis {

namespace {

using rt::Time;

constexpr std::size_t kMaxFixpointIterations = 100000;

/// Upper bound on any quantity of interest; beyond this the analysis is
/// declared divergent (overloaded task set).
Time divergence_limit(const rt::TaskSet& tasks, rt::TaskIndex i) {
  // A busy period longer than this cannot end before the deadline anyway.
  Time sum = tasks[i].deadline;
  for (const auto& t : tasks) {
    sum += 4 * std::max(t.period, t.total_demand());
  }
  return sum;
}

}  // namespace

NpsTaskBound nps_bound(const rt::TaskSet& tasks, rt::TaskIndex i) {
  MCS_REQUIRE(i < tasks.size(), "nps_bound: bad task index");
  const rt::Task& task = tasks[i];
  const Time e_i = task.total_demand();
  const Time limit = divergence_limit(tasks, i);

  Time blocking = 0;
  for (const rt::TaskIndex j : tasks.lower_priority(i)) {
    blocking = std::max(blocking, tasks[j].total_demand());
  }
  const auto hp = tasks.higher_priority(i);

  // Level-i active period.
  Time period_len = blocking + e_i;
  for (std::size_t it = 0;; ++it) {
    if (it >= kMaxFixpointIterations || period_len > limit) {
      return {};  // divergent: overload at this priority level
    }
    Time next = blocking;
    next += static_cast<Time>(task.arrival->releases_in(period_len)) * e_i;
    for (const rt::TaskIndex j : hp) {
      next += static_cast<Time>(tasks[j].arrival->releases_in(period_len)) *
              tasks[j].total_demand();
    }
    if (next == period_len) {
      break;
    }
    period_len = next;
  }

  const auto own_jobs = task.arrival->releases_in(period_len);
  MCS_ASSERT(own_jobs >= 1, "active period holds no job");

  Time worst = 0;
  for (std::uint64_t q = 0; q < own_jobs; ++q) {
    // Start time of the q-th job (0-based) after the critical instant.
    Time start = blocking + static_cast<Time>(q) * e_i;
    for (std::size_t it = 0;; ++it) {
      if (it >= kMaxFixpointIterations || start > limit) {
        return {};
      }
      Time next = blocking + static_cast<Time>(q) * e_i;
      for (const rt::TaskIndex j : hp) {
        next +=
            static_cast<Time>(tasks[j].arrival->releases_in_closed(start)) *
            tasks[j].total_demand();
      }
      if (next == start) {
        break;
      }
      start = next;
    }
    const Time release_q = static_cast<Time>(q) * task.period;
    const Time response = start + e_i - release_q;
    worst = std::max(worst, response);
    // Early exit: later jobs cannot respond slower once the start time
    // advances past the next release and the period's work is drained.
  }

  NpsTaskBound result;
  result.wcrt = worst;
  result.schedulable = worst <= task.deadline;
  return result;
}

bool nps_schedulable(const rt::TaskSet& tasks) {
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    if (!nps_bound(tasks, i).schedulable) {
      return false;
    }
  }
  return true;
}

}  // namespace mcs::analysis
