// Wall-clock degradation budget for deadline-bounded analysis requests.
//
// A long-lived admission-control service (src/svc) cannot let one analysis
// query monopolize a worker: each request carries a SolveBudget, and once
// the budget is exceeded every subsequent delay-MILP solve of that request
// degrades to the LP relaxation's dual bound — an upper bound on the true
// MILP optimum, so every derived response-time bound stays *safe*, merely
// more pessimistic (DESIGN.md §5.7 safety contract).  A degraded analysis
// can therefore under-claim schedulability but never over-claim it.
//
// Budgets are checked at solve granularity (one check per delay MILP), not
// inside the solver: a solve that started before the deadline runs to
// completion.  The clock is std::chrono::steady_clock, so exceeded() is
// monotone — once true it stays true for the rest of the request.
//
// Determinism: an unlimited() budget never changes behavior, and an
// exhausted() budget deterministically degrades *every* solve; only budgets
// that expire mid-request give timing-dependent (but always safe) results.
#pragma once

#include <chrono>

namespace mcs::analysis {

class SolveBudget {
 public:
  /// No deadline: exceeded() is always false.  Default.
  SolveBudget() = default;

  /// Budget that expires `headroom` after now.  A non-positive headroom
  /// yields an exhausted budget.
  static SolveBudget after(std::chrono::nanoseconds headroom) {
    SolveBudget b;
    b.unlimited_ = false;
    if (headroom <= std::chrono::nanoseconds::zero()) {
      b.exhausted_ = true;
    } else {
      b.deadline_ = std::chrono::steady_clock::now() + headroom;
    }
    return b;
  }

  /// Already-expired budget: every solve degrades.  Used by tests and by
  /// requests that ask for the pure-relaxation fast path (budget_ms = 0).
  static SolveBudget exhausted() {
    SolveBudget b;
    b.unlimited_ = false;
    b.exhausted_ = true;
    return b;
  }

  bool is_unlimited() const noexcept { return unlimited_; }

  /// True once the deadline has passed (monotone: steady_clock never goes
  /// backwards).  Cheap enough for one call per MILP solve.
  bool exceeded() const noexcept {
    if (unlimited_) return false;
    if (exhausted_) return true;
    return std::chrono::steady_clock::now() >= deadline_;
  }

 private:
  bool unlimited_ = true;
  bool exhausted_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace mcs::analysis
