// AnalysisEngine: a reentrant session layer over the schedulability stack.
//
// The paper's pipeline is intrinsically repetitive — the RTA fixpoint (§V /
// §VI) re-solves near-identical delay MILPs round after round, the greedy
// LS-marking loop re-analyzes the whole task set after every promotion, and
// the evaluation sweeps (§VII) analyze each task set three ways.  The free
// functions in response_time.hpp / greedy.hpp / schedulability.hpp throw
// all solver state away between calls; an AnalysisEngine instead carries it
// across calls for as long as the task-set *parameters* (everything except
// the LS flags) stay the same:
//
//  * a per-(task, formulation case) DelayMilp cache whose models are built
//    marking-agnostically (build_delay_milp patchable_ls) so they survive
//    greedy LS-promotion rounds as bound/rhs patches instead of rebuilds;
//  * one reusable lp::MilpSolver session per cached formulation, keeping
//    the clamped root model and simplex tableaus alive across solves;
//  * carried incumbents, so each branch & bound starts pruning from the
//    previous round's solution;
//  * memoized NPS bounds;
//  * optional fan-out of per-task bounds onto a support::ThreadPool with
//    one private engine per worker and a stable task-to-worker mapping, so
//    results are index-merged and thread-count independent.
//
// Determinism: for a fixed task set and options, every engine method
// returns the same result regardless of how much state the engine carried
// in or how many threads it uses.  Each cached formulation's solve chain
// (build -> patch -> solve sequences) depends only on the calls made for
// that task, and the MilpSolver session guarantees each solve is
// bit-identical to a fresh solve of the same patched model.
//
// The legacy free functions remain as thin wrappers that construct a
// throwaway engine, so existing call sites and tests are unaffected.
#pragma once

#include <cstddef>
#include <memory>

#include "analysis/greedy.hpp"
#include "analysis/nps.hpp"
#include "analysis/opa.hpp"
#include "analysis/response_time.hpp"
#include "analysis/schedulability.hpp"
#include "analysis/sensitivity.hpp"
#include "rt/task.hpp"

namespace mcs::analysis {

struct EngineConfig {
  /// Worker threads for per-task fan-out in analyze_wp and each greedy
  /// round: 1 = serial (no pool), 0 = hardware concurrency, N = N workers.
  /// Results are identical for every value; only wall time changes.
  std::size_t threads = 1;
};

class AnalysisEngine {
 public:
  explicit AnalysisEngine(const EngineConfig& config = {});
  ~AnalysisEngine();
  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Engine-backed equivalents of the free functions of the same names.
  /// Each call first fingerprints `tasks` (all parameters except the LS
  /// flags): an unchanged fingerprint reuses the cached formulations and
  /// solver sessions, a changed one drops them.
  TaskBoundResult bound_response_time(const rt::TaskSet& tasks,
                                      rt::TaskIndex i,
                                      const AnalysisOptions& options = {});
  NpsTaskBound nps_bound(const rt::TaskSet& tasks, rt::TaskIndex i);
  WpResult analyze_wp(const rt::TaskSet& tasks,
                      const AnalysisOptions& options = {});

  /// Bounds every task under its *current* LS marking, with no greedy
  /// reassignment (analyze_proposed would re-mark the set): the WpResult
  /// digest of one bound_all pass over `tasks` as given.  This is the bound
  /// extraction the model checker (mcs::verify) uses for its
  /// analysis-soundness cross-check, where the explored marking must match
  /// the analyzed one exactly; options.ignore_ls selects the WP baseline
  /// formulation instead.
  WpResult analyze_marked(const rt::TaskSet& tasks,
                          const AnalysisOptions& options = {});

  /// Greedy LS marking (paper §VI).  When `wp_round0` is given it must be
  /// the WP analysis of this same `tasks` under compatible options; the
  /// greedy loop then adopts it as its round 0 instead of recomputing —
  /// sound because round 0 analyzes the all-NLS marking, whose formulation
  /// coincides with the WP one — and the sweep harness stops duplicating
  /// that policy inline.
  ProposedResult analyze_proposed(const rt::TaskSet& tasks,
                                  const AnalysisOptions& options = {},
                                  const WpResult* wp_round0 = nullptr);

  ApproachResult analyze(const rt::TaskSet& tasks, Approach approach,
                         const AnalysisOptions& options = {});
  OpaResult audsley_assign(const rt::TaskSet& tasks, Approach approach,
                           const AnalysisOptions& options = {});

  /// Sensitivity search (Figure 2(e) axis).  Beyond plain reuse, each
  /// probe's RTA fixpoints are warm-started from the WCRTs of the largest
  /// already-proven-schedulable factor at the same LS marking: the least
  /// fixpoint is monotone in the scaled parameters (metamorphic tests
  /// InflatingExecutionTime / InflatingMemoryPhases), so that seed starts
  /// at or below the target fixpoint and the iteration converges to the
  /// same place in fewer rounds.
  SensitivityResult max_scaling_factor(const rt::TaskSet& tasks,
                                       Approach approach,
                                       ScalingDimension dimension,
                                       const SensitivityOptions& options = {});

  /// Worker count the engine would fan out on (1 when serial).
  std::size_t workers() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mcs::analysis
