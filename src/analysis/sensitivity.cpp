#include "analysis/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "support/contracts.hpp"

namespace mcs::analysis {

namespace {

rt::TaskSet scaled(const rt::TaskSet& tasks, ScalingDimension dimension,
                   double factor) {
  rt::TaskSet result = tasks;
  for (std::size_t i = 0; i < result.size(); ++i) {
    auto scale = [factor](rt::Time value) {
      return static_cast<rt::Time>(
          std::ceil(static_cast<double>(value) * factor));
    };
    switch (dimension) {
      case ScalingDimension::kMemoryPhases:
        result[i].copy_in = scale(result[i].copy_in);
        result[i].copy_out = scale(result[i].copy_out);
        break;
      case ScalingDimension::kExecutionTimes:
        result[i].exec = std::max<rt::Time>(1, scale(result[i].exec));
        break;
    }
  }
  return result;
}

}  // namespace

SensitivityResult max_scaling_factor(const rt::TaskSet& tasks,
                                     Approach approach,
                                     ScalingDimension dimension,
                                     const SensitivityOptions& options) {
  MCS_REQUIRE(options.tolerance > 0.0, "sensitivity: bad tolerance");
  MCS_REQUIRE(options.upper_limit >= 1.0, "sensitivity: bad upper limit");

  SensitivityResult result;
  const auto schedulable = [&](double factor) {
    ++result.analysis_runs;
    return analyze(scaled(tasks, dimension, factor), approach,
                   options.analysis)
        .schedulable;
  };

  if (!schedulable(1.0)) {
    result.min_failing_factor = 1.0;
    return result;
  }

  // Grow the bracket geometrically until failure (or the limit).
  double lo = 1.0;
  double hi = 2.0;
  while (hi <= options.upper_limit && schedulable(hi)) {
    lo = hi;
    hi *= 2.0;
  }
  if (hi > options.upper_limit) {
    // Never failed within the limit: report the limit as schedulable-up-to.
    result.max_factor = lo;
    result.min_failing_factor = hi;
    return result;
  }

  // Binary search on [lo, hi): lo schedulable, hi failing.
  while (hi - lo > options.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (schedulable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.max_factor = lo;
  result.min_failing_factor = hi;
  return result;
}

}  // namespace mcs::analysis
