#include "analysis/sensitivity.hpp"

#include "analysis/engine.hpp"

namespace mcs::analysis {

SensitivityResult max_scaling_factor(const rt::TaskSet& tasks,
                                     Approach approach,
                                     ScalingDimension dimension,
                                     const SensitivityOptions& options) {
  // The search lives in AnalysisEngine (engine.cpp): beyond formulation
  // reuse, each probe's RTA fixpoints are warm-started from the WCRTs the
  // previous (smaller) schedulable factor proved at the same LS marking.
  AnalysisEngine engine;
  return engine.max_scaling_factor(tasks, approach, dimension, options);
}

}  // namespace mcs::analysis
