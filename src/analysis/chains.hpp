// End-to-end latency bounds for data-driven task chains (rt/chain.hpp) —
// the composition-style analysis enabled by rule R2's eager copy-out
// (paper §IV-A; flagged as future work in §VIII).
//
// Model: every chain task is activated periodically and independently; a
// consumer samples the *latest* producer output whose copy-out completed
// before the consumer's copy-in started.  Let A_i bound the age of the data
// inside a stage-i output at that output's completion, measured from the
// release of the originating first-stage job.  A_1 <= R_1, and for each hop
//
//   A_{i+1} <= A_i + T_i + R_i + R_{i+1}
//
// (consecutive stage-i completions are at most T_i + R_i apart, so the
// version a consumer samples is at most that stale on top of its own age;
// the consumer then takes at most R_{i+1} to publish).  Hence
//
//   max data age <= R_{c_1} + sum_{i=1..m-1} (T_{c_i} + R_{c_i} + R_{c_i+1}).
//
// The bound needs every per-task WCRT R_{c_i} (any of the three analyses),
// R_i <= T_i (no backlog), and periodic activation (a sporadic producer can
// stay silent arbitrarily long, making any age bound impossible).  The
// simulator-side counterpart (sim/chain_age.hpp) measures the same metric
// on traces; a property test checks measured <= bound.
#pragma once

#include <vector>

#include "rt/chain.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::analysis {

struct ChainAgeBound {
  /// Upper bound on the age of the data behind any output of the last
  /// chain task, measured from the release of the originating stage-1 job.
  rt::Time max_data_age = rt::kTimeMax;
  /// False when some stage has no finite WCRT or R_i > T_i (backlog), in
  /// which case max_data_age is meaningless (kTimeMax).
  bool valid = false;
  /// True when the chain also meets its max_data_age constraint (always
  /// true when no constraint was set but the bound is valid).
  bool meets_constraint = false;
};

/// Composes the end-to-end bound from per-task WCRTs (`wcrt[i]` for task i,
/// rt::kTimeMax when unbounded).
ChainAgeBound chain_age_bound(const rt::TaskSet& tasks,
                              const rt::Chain& chain,
                              const std::vector<rt::Time>& wcrt);

}  // namespace mcs::analysis
