// MILP encoding of the worst-case delay problem (paper §V).
//
// Given a task under analysis tau_i and a tentative delay-window length t,
// builds the mixed-integer program whose optimum upper-bounds the total
// length of the N_i(t) scheduling intervals that can delay tau_i, per the
// paper's Constraints 1-15.  Three formulation cases exist (§V-A / §V-B):
//
//   kNls     — tau_i analyzed as non-latency-sensitive (Theorem 1 window,
//              Constraints 1-13);
//   kLsCaseA — tau_i is LS and is *not* promoted to urgent in I_0
//              (Corollary 1 window, Constraints 1-13 plus 14);
//   kLsCaseB — tau_i is LS and *is* promoted: two intervals, the CPU
//              performs tau_i's copy-in followed by its execution
//              (Constraint 15).
//
// Encoding notes (see DESIGN.md §5.5 for the full rationale):
//  * The copy-in and copy-out placement variables L / U of the paper are
//    substituted away using Constraints 1 and 2 (L_j^k = E_j^{k+1},
//    U_j^{k+1} = E_j^k + LE_j^k), which shrinks the MILP dramatically.
//  * The per-interval cardinality Constraints 5 and 6 are encoded as <= 1
//    rather than == 1.  Real schedules may leave the CPU or the DMA idle in
//    an interval (e.g. at the start of a busy window), so <= admits every
//    real schedule; since the objective maximizes total interval length the
//    bound remains safe, and the fully-packed worst case is still available
//    to the optimizer.
//  * CL_j^k (cancelled copy-in) is admitted only for tasks that some
//    higher-priority latency-sensitive task could cancel (R3).
//  * The big-M of Constraint 13 is the tightest global bound on an interval
//    length rather than an arbitrary large constant.
#pragma once

#include <cstddef>
#include <vector>

#include "lp/model.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::analysis {

enum class FormulationCase { kNls, kLsCaseA, kLsCaseB };

const char* to_string(FormulationCase c) noexcept;

/// The assembled MILP plus the handles needed to interpret its solution.
struct DelayMilp {
  lp::Model model;
  std::size_t num_intervals = 0;
  /// delta_vars[k] is the interval-length variable Delta_k.
  std::vector<lp::VarId> delta_vars;
  /// exec_vars[j][k] is E_j^k (invalid VarId when structurally zero).
  std::vector<std::vector<lp::VarId>> exec_vars;
  /// urgent_vars[j][k] is LE_j^k (invalid when structurally zero).
  std::vector<std::vector<lp::VarId>> urgent_vars;
  /// cancel_vars[j][k] is CL_j^k (invalid when structurally zero).
  std::vector<std::vector<lp::VarId>> cancel_vars;
  /// alpha_vars[k] is the Constraint 13 max-selector of interval k.
  /// Branch these first: once every alpha is fixed the residual problem is
  /// a near-integral assignment and the tree collapses.
  std::vector<lp::VarId> alpha_vars;

  /// Index of task j's Constraint-7 budget row in `model` (npos when the
  /// task has no admissible execution variables).  Together with
  /// `cancellation_budget_constraint` these are the only pieces of the
  /// formulation that depend on the window length `t` once the interval
  /// count is fixed — `update_delay_milp` patches exactly these.
  std::vector<std::size_t> budget_constraints;
  std::size_t cancellation_budget_constraint = kNoConstraint;

  /// True when the formulation was built marking-agnostically (see
  /// `build_delay_milp`): LE/CL columns exist for every task that could
  /// ever be latency-sensitive, and the *current* marking is expressed
  /// purely through column bounds that `update_delay_milp` re-derives.
  bool patchable_ls = false;

  static constexpr std::size_t kNoConstraint = static_cast<std::size_t>(-1);
};

/// Builds the delay-maximization MILP for task `i` over a window of length
/// `t`.  With `ignore_ls` the task set is treated as all-NLS — this is the
/// analysis of the protocol of [3] (paper Conclusions; DESIGN.md §5.3), and
/// only kNls is a valid case then.
///
/// With `patchable_ls` (meaningful only when `!ignore_ls`) the formulation
/// is built *marking-agnostically*: LE/CL columns are admitted for the
/// superset of tasks that could be latency-sensitive under any marking,
/// and the per-interval big-Ms cover that superset (looser, but every
/// bound stays valid and the integer optimum is unchanged — at any
/// integral assignment each interval length is still pinned to
/// max(cpu, dma) by the alpha pair and the cuts).  Columns inactive under
/// the task set's *current* LS flags are fixed to zero through their
/// bounds, so a later `update_delay_milp` can re-target the same model to
/// a different marking without rebuilding — this is what lets the
/// analysis engine's formulation cache survive greedy LS-promotion
/// rounds, where only flags change.
DelayMilp build_delay_milp(const rt::TaskSet& tasks, rt::TaskIndex i,
                           rt::Time t, FormulationCase fcase,
                           bool ignore_ls = false, bool patchable_ls = false);

/// Retargets an already-built formulation to a new window length `t`
/// *without* rebuilding it.  Valid only when the interval count for the new
/// window equals `milp.num_intervals` (same formulation case, same task,
/// same `ignore_ls`): the window length then enters the model solely
/// through the Constraint-7 interference budgets and the cancellation
/// budget, whose right-hand sides this patches in place.  The fixpoint
/// loop uses this to reuse one `DelayMilp` across rounds.
///
/// For a `patchable_ls` formulation this additionally re-derives the
/// LS-dependent pieces from the task set's current flags — LE/CL
/// admission column bounds and the cancellation-budget right-hand side —
/// so the same model may also be reused across greedy LS-marking rounds.
void update_delay_milp(DelayMilp& milp, const rt::TaskSet& tasks,
                       rt::TaskIndex i, rt::Time t, bool ignore_ls = false);

}  // namespace mcs::analysis
