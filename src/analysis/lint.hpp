// Adapter from the analysis layer's DelayMilp to the mcs::check audits
// (check/formulation_lint.hpp), plus the differential patched-vs-fresh
// verification the engine's debug hooks run.  mcs_check sits below
// mcs_analysis in the dependency order, so the check library defines its
// own FormulationView mirror and this header provides the one-line
// bridge.
#pragma once

#include "analysis/milp_formulation.hpp"
#include "check/diagnostics.hpp"
#include "check/formulation_lint.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::analysis {

/// Non-owning check-layer view of a DelayMilp (valid while `milp` lives).
check::FormulationView formulation_view(const DelayMilp& milp);

/// Audits `milp` against the Section V invariants for the given build /
/// patch arguments.  Pure; returns the diagnostics.
check::CheckReport lint_delay_milp(const DelayMilp& milp,
                                   const rt::TaskSet& tasks,
                                   rt::TaskIndex i, rt::Time t,
                                   FormulationCase fcase,
                                   bool ignore_ls = false);

/// Rebuilds the formulation from scratch with the same arguments and
/// requires the cache-patched `milp` to be structurally identical
/// (check::diff_models, zero tolerance).  This is the ground truth the
/// patch path (`update_delay_milp` + LS-marking patches) must reproduce.
check::CheckReport verify_patched_equivalence(const DelayMilp& milp,
                                              const rt::TaskSet& tasks,
                                              rt::TaskIndex i, rt::Time t,
                                              FormulationCase fcase,
                                              bool ignore_ls = false);

}  // namespace mcs::analysis
