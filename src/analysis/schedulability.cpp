#include "analysis/schedulability.hpp"

#include "analysis/engine.hpp"

namespace mcs::analysis {

const char* to_string(Approach approach) noexcept {
  switch (approach) {
    case Approach::kProposed:
      return "proposed";
    case Approach::kWasilyPellizzoni:
      return "wp2016";
    case Approach::kNonPreemptive:
      return "nps";
  }
  return "unknown";
}

ApproachResult analyze(const rt::TaskSet& tasks, Approach approach,
                       const AnalysisOptions& options) {
  AnalysisEngine engine;
  return engine.analyze(tasks, approach, options);
}

}  // namespace mcs::analysis
