#include "analysis/schedulability.hpp"

namespace mcs::analysis {

const char* to_string(Approach approach) noexcept {
  switch (approach) {
    case Approach::kProposed:
      return "proposed";
    case Approach::kWasilyPellizzoni:
      return "wp2016";
    case Approach::kNonPreemptive:
      return "nps";
  }
  return "unknown";
}

ApproachResult analyze(const rt::TaskSet& tasks, Approach approach,
                       const AnalysisOptions& options) {
  ApproachResult result;
  result.wcrt.assign(tasks.size(), rt::kTimeMax);
  result.ls_flags.assign(tasks.size(), false);

  switch (approach) {
    case Approach::kProposed: {
      const ProposedResult r = analyze_proposed(tasks, options);
      result.schedulable = r.schedulable;
      result.ls_flags = r.ls_flags;
      result.any_relaxation_fallback = r.any_relaxation_fallback;
      for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        result.wcrt[i] = r.per_task[i].wcrt;
      }
      break;
    }
    case Approach::kWasilyPellizzoni: {
      const WpResult r = analyze_wp(tasks, options);
      result.schedulable = r.schedulable;
      result.any_relaxation_fallback = r.any_relaxation_fallback;
      for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        result.wcrt[i] = r.per_task[i].wcrt;
      }
      break;
    }
    case Approach::kNonPreemptive: {
      result.schedulable = true;
      for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        const NpsTaskBound bound = nps_bound(tasks, i);
        result.wcrt[i] = bound.wcrt;
        result.schedulable = result.schedulable && bound.schedulable;
      }
      break;
    }
  }
  return result;
}

}  // namespace mcs::analysis
