#include "analysis/chains.hpp"

#include "support/contracts.hpp"

namespace mcs::analysis {

ChainAgeBound chain_age_bound(const rt::TaskSet& tasks,
                              const rt::Chain& chain,
                              const std::vector<rt::Time>& wcrt) {
  rt::validate_chain(tasks, chain);
  MCS_REQUIRE(wcrt.size() == tasks.size(),
              "chain_age_bound: WCRT vector size mismatch");

  ChainAgeBound bound;
  // Reject unbounded stages / backlog up-front.
  for (const rt::TaskIndex idx : chain.tasks) {
    if (wcrt[idx] == rt::kTimeMax || wcrt[idx] > tasks[idx].period) {
      return bound;  // no valid composition
    }
  }
  // A_1 = R_1;  A_{i+1} = A_i + T_i + R_i + R_{i+1}.
  rt::Time total = wcrt[chain.tasks.front()];
  for (std::size_t stage = 0; stage + 1 < chain.tasks.size(); ++stage) {
    const rt::TaskIndex producer = chain.tasks[stage];
    const rt::TaskIndex consumer = chain.tasks[stage + 1];
    total += tasks[producer].period + wcrt[producer] + wcrt[consumer];
  }
  bound.max_data_age = total;
  bound.valid = true;
  bound.meets_constraint =
      chain.max_data_age == 0 || total <= chain.max_data_age;
  return bound;
}

}  // namespace mcs::analysis
