#include "analysis/response_time.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/milp_formulation.hpp"
#include "analysis/window.hpp"
#include "lp/simplex.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace mcs::analysis {

namespace {

using rt::Time;

/// Outcome of one delay-MILP solve.
struct DelayBound {
  bool valid = false;         ///< a finite safe bound was obtained
  double delay = 0.0;         ///< upper bound on sum of interval lengths
  bool relaxation = false;    ///< dual bound used (budget exhausted)
  std::size_t nodes = 0;
  std::size_t lp_iterations = 0;
};

namespace telemetry = support::telemetry;

/// Reuses one built `DelayMilp` across fixpoint rounds of the same
/// (task, formulation case).  While the interval count is unchanged the
/// window length only enters the model through a handful of right-hand
/// sides (see `update_delay_milp`), so a cached formulation is patched in
/// place instead of rebuilt; the previous round's incumbent is carried in
/// as a starting incumbent so branch & bound can prune from node one.
struct DelayMilpCache {
  bool valid = false;
  FormulationCase fcase = FormulationCase::kNls;
  std::size_t num_intervals = 0;
  DelayMilp milp;
  lp::MilpOptions milp_options;   ///< options.milp + branch priorities
  std::vector<double> incumbent;  ///< last solve's values (may be empty)
};

DelayBound solve_delay(const rt::TaskSet& tasks, rt::TaskIndex i, Time t,
                       FormulationCase fcase,
                       const AnalysisOptions& options,
                       DelayMilpCache* cache = nullptr) {
  std::size_t intervals = 2;
  switch (fcase) {
    case FormulationCase::kNls:
      intervals = window_intervals_nls(tasks, i, t);
      break;
    case FormulationCase::kLsCaseA:
      intervals = window_intervals_ls(tasks, i, t);
      break;
    case FormulationCase::kLsCaseB:
      break;
  }

  DelayMilp local;
  DelayMilp* milp = &local;
  bool cache_hit = false;
  if (cache != nullptr && cache->valid && cache->fcase == fcase &&
      cache->num_intervals == intervals) {
    update_delay_milp(cache->milp, tasks, i, t, options.ignore_ls);
    telemetry::count("analysis.milp_cache_hits");
    cache_hit = true;
    milp = &cache->milp;
  } else if (cache != nullptr) {
    cache->milp = build_delay_milp(tasks, i, t, fcase, options.ignore_ls);
    cache->valid = true;
    cache->fcase = fcase;
    cache->num_intervals = intervals;
    cache->incumbent.clear();
    telemetry::count("analysis.milp_builds");
    milp = &cache->milp;
  } else {
    local = build_delay_milp(tasks, i, t, fcase, options.ignore_ls);
    telemetry::count("analysis.milp_builds");
  }

  DelayBound out;
  if (options.lp_relaxation_only) {
    const lp::LpSolution sol = solve_lp(milp->model, options.milp.lp);
    out.lp_iterations = sol.iterations;
    if (sol.status == lp::SolveStatus::kOptimal) {
      out.valid = true;
      out.delay = sol.objective;
      out.relaxation = true;
      telemetry::count("analysis.fallbacks.lp_relaxation_only");
    }
    return out;
  }
  lp::MilpOptions local_options;
  lp::MilpOptions& milp_options =
      cache != nullptr ? cache->milp_options : local_options;
  if (!cache_hit) {
    // Branch the Constraint 13 max-selectors first (see
    // DelayMilp::alpha_vars).  On a cache hit the priorities (and every
    // other option) are structural and carry over unchanged.
    milp_options = options.milp;
    milp_options.branch_priority.assign(milp->model.num_variables(), 0);
    for (const lp::VarId alpha : milp->alpha_vars) {
      milp_options.branch_priority[alpha.index] = 1;
    }
  }
  milp_options.start_values =
      cache_hit && cache != nullptr ? cache->incumbent
                                    : std::vector<double>{};
  const lp::MilpResult res = solve_milp(milp->model, milp_options);
  if (cache != nullptr && res.has_incumbent) {
    cache->incumbent = res.values;
  }
  out.nodes = res.nodes;
  out.lp_iterations = res.lp_iterations;
  switch (res.status) {
    case lp::SolveStatus::kOptimal:
      out.valid = true;
      // best_bound equals the objective when optimality was proven and is
      // the safe dual bound when the search stopped at the relative gap.
      out.delay = res.best_bound;
      out.relaxation = res.gap_terminated;
      if (res.gap_terminated) {
        telemetry::count("analysis.fallbacks.gap_terminated");
      }
      break;
    case lp::SolveStatus::kNodeLimit:
      // Dual bound >= true maximum: safe.
      if (std::isfinite(res.best_bound)) {
        out.valid = true;
        out.delay = res.best_bound;
        out.relaxation = true;
        telemetry::count("analysis.fallbacks.node_limit");
      }
      break;
    case lp::SolveStatus::kInfeasible:
      // Only the empty schedule could be cut off; treat as zero delay.
      out.valid = true;
      out.delay = 0.0;
      break;
    default:
      break;  // unbounded / iteration limit: no safe bound
  }
  return out;
}

}  // namespace

Time delay_to_ticks(double delay) {
  MCS_REQUIRE(std::isfinite(delay) && delay >= 0.0,
              "delay_to_ticks: non-finite or negative delay bound");
  // Plain ceil: the only rounding that can never place the tick bound
  // *below* the double bound.  The previous `ceil(delay - 1e-6)` shaved a
  // whole tick off genuine bounds such as 5.0000005 — unsafe (DESIGN.md
  // §5.1 requires rounding up).  No downward "noise" adjustment is applied
  // either: when the solver reports k + epsilon we cannot prove the true
  // optimum is k, so the extra tick of pessimism is the price of safety.
  // Values that are exactly integral (the common case: all MILP data are
  // integer ticks) pass through ceil unchanged.
  return static_cast<Time>(std::ceil(delay));
}

TaskBoundResult bound_response_time(const rt::TaskSet& tasks,
                                    rt::TaskIndex i,
                                    const AnalysisOptions& options) {
  MCS_REQUIRE(i < tasks.size(), "bound_response_time: bad task index");
  const telemetry::ScopedTimer timer("analysis.bound_response_time");
  telemetry::count("analysis.tasks_analyzed");
  const rt::Task& task = tasks[i];
  const bool analyzed_ls = task.latency_sensitive && !options.ignore_ls;

  TaskBoundResult result;
  Time response = task.total_demand();  // R^(0) = l + C + u
  if (response > task.deadline) {
    result.wcrt = response;
    result.exceeded_deadline = true;
    return result;
  }

  // Case (b) for LS tasks has a fixed two-interval window independent of t;
  // solve it once.
  double case_b_delay = 0.0;
  if (analyzed_ls) {
    const DelayBound b =
        solve_delay(tasks, i, 0, FormulationCase::kLsCaseB, options);
    result.milp_nodes += b.nodes;
    result.lp_iterations += b.lp_iterations;
    if (!b.valid) {
      return result;  // no safe bound obtainable
    }
    result.used_relaxation_bound |= b.relaxation;
    case_b_delay = b.delay;
  }

  // One formulation cache for the fast-accept probe and every fixpoint
  // round: they all use the same (task, case) pair, so whenever the
  // interval count repeats the built MILP is patched instead of rebuilt
  // and the previous incumbent seeds the next search.
  DelayMilpCache cache;

  // Fast accept: the MILP value is monotone in the window length, so if
  // the bound computed for the largest relevant window t_D = D - C - u
  // already fits the deadline, the least fixpoint fits too (and that value
  // is itself a safe WCRT bound).  One MILP instead of a full iteration in
  // the common (schedulable) case.
  if (options.fast_accept) {
    const Time t_deadline = task.deadline - task.exec - task.copy_out;
    const FormulationCase fcase = analyzed_ls ? FormulationCase::kLsCaseA
                                              : FormulationCase::kNls;
    const DelayBound d =
        solve_delay(tasks, i, t_deadline, fcase, options, &cache);
    result.milp_nodes += d.nodes;
    result.lp_iterations += d.lp_iterations;
    if (d.valid) {
      result.used_relaxation_bound |= d.relaxation;
      const Time r_full = delay_to_ticks(std::max(d.delay, case_b_delay)) +
                          task.copy_out;
      if (r_full <= task.deadline) {
        result.wcrt = std::max(response, r_full);
        result.schedulable = true;
        return result;
      }
      // Inconclusive (f(D) > D does not imply a miss): fall through to the
      // iterative scheme.
    }
  }

  std::vector<std::uint64_t> prev_budgets;
  double prev_ls_releases = -1.0;
  for (std::size_t iter = 0; iter < options.max_outer_iterations; ++iter) {
    ++result.outer_iterations;
    telemetry::count("analysis.fixpoint_rounds");
    const Time t = response - task.exec - task.copy_out;
    MCS_ASSERT(t >= 0, "negative delay window");
    const FormulationCase fcase = analyzed_ls ? FormulationCase::kLsCaseA
                                              : FormulationCase::kNls;
    const std::size_t window = analyzed_ls
                                   ? window_intervals_ls(tasks, i, t)
                                   : window_intervals_nls(tasks, i, t);
    telemetry::record("analysis.window_intervals",
                      static_cast<double>(window));
    // The window length enters the MILP only through the interference
    // budgets (which also fix the interval count) and the cancellation
    // budget.  If none of them moved since the previous round the MILP is
    // *identical*, so its value is too: fixpoint reached.  (Comparing the
    // budgets rather than the interval count alone is exact: the count is
    // derived from the budget sum and can mask a changed cancellation
    // budget or clamp-equal windows with different budgets.)
    std::vector<std::uint64_t> budgets = interference_budgets(tasks, i, t);
    const double ls_releases =
        ls_release_budget(tasks, t, options.ignore_ls);
    if (iter > 0 && budgets == prev_budgets &&
        ls_releases == prev_ls_releases) {
      result.wcrt = response;
      result.schedulable = response <= task.deadline;
      return result;
    }
    prev_budgets = std::move(budgets);
    prev_ls_releases = ls_releases;

    const DelayBound a = solve_delay(tasks, i, t, fcase, options, &cache);
    result.milp_nodes += a.nodes;
    result.lp_iterations += a.lp_iterations;
    if (!a.valid) {
      return result;
    }
    result.used_relaxation_bound |= a.relaxation;

    const double delay = std::max(a.delay, case_b_delay);
    const Time new_response =
        delay_to_ticks(delay) + task.copy_out;
    // The MILP value never shrinks as the window grows; keep monotone.
    const Time next = std::max(response, new_response);
    if (next > task.deadline) {
      result.wcrt = next;
      result.exceeded_deadline = true;
      return result;
    }
    if (next == response) {
      result.wcrt = response;
      result.schedulable = true;
      return result;
    }
    response = next;
  }
  // Iteration cap hit without convergence: no safe claim below deadline.
  result.wcrt = rt::kTimeMax;
  return result;
}

}  // namespace mcs::analysis
