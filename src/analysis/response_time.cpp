#include "analysis/response_time.hpp"

#include <cmath>

#include "analysis/engine.hpp"
#include "support/contracts.hpp"

namespace mcs::analysis {

rt::Time delay_to_ticks(double delay) {
  MCS_REQUIRE(std::isfinite(delay) && delay >= 0.0,
              "delay_to_ticks: non-finite or negative delay bound");
  // Plain ceil: the only rounding that can never place the tick bound
  // *below* the double bound.  The previous `ceil(delay - 1e-6)` shaved a
  // whole tick off genuine bounds such as 5.0000005 — unsafe (DESIGN.md
  // §5.1 requires rounding up).  No downward "noise" adjustment is applied
  // either: when the solver reports k + epsilon we cannot prove the true
  // optimum is k, so the extra tick of pessimism is the price of safety.
  // Values that are exactly integral (the common case: all MILP data are
  // integer ticks) pass through ceil unchanged.
  return static_cast<rt::Time>(std::ceil(delay));
}

TaskBoundResult bound_response_time(const rt::TaskSet& tasks,
                                    rt::TaskIndex i,
                                    const AnalysisOptions& options) {
  // The fixpoint iteration lives in AnalysisEngine (engine.cpp), which
  // carries formulation caches and solver sessions across calls; a
  // throwaway engine reproduces the historical one-shot behavior exactly
  // (within one call the engine's per-(task, case) cache plays the role of
  // the old local DelayMilpCache).
  AnalysisEngine engine;
  return engine.bound_response_time(tasks, i, options);
}

}  // namespace mcs::analysis
