// Top-level schedulability API: one entry point covering the three
// approaches compared in the paper's evaluation (§VII).
#pragma once

#include <vector>

#include "analysis/greedy.hpp"
#include "analysis/nps.hpp"
#include "analysis/response_time.hpp"
#include "rt/task.hpp"

namespace mcs::analysis {

enum class Approach {
  kProposed,          ///< this paper's protocol + greedy LS assignment
  kWasilyPellizzoni,  ///< the protocol of [3], analyzed all-NLS
  kNonPreemptive,     ///< classical NPS, no DMA overlap
};

const char* to_string(Approach approach) noexcept;

struct ApproachResult {
  bool schedulable = false;
  /// Per-task WCRT bounds (kTimeMax when unbounded / past deadline).
  std::vector<rt::Time> wcrt;
  /// LS marking chosen by the greedy algorithm (kProposed only).
  std::vector<bool> ls_flags;
  bool any_relaxation_fallback = false;
  /// True when any bound degraded under an exceeded SolveBudget
  /// (analysis/budget.hpp): the verdict is safe but pessimistic.
  bool degraded = false;
};

/// Analyzes one core's task set under the chosen approach.
ApproachResult analyze(const rt::TaskSet& tasks, Approach approach,
                       const AnalysisOptions& options = {});

}  // namespace mcs::analysis
