#include "analysis/window.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::analysis {

std::vector<std::uint64_t> interference_budgets(const rt::TaskSet& tasks,
                                                rt::TaskIndex i, rt::Time t) {
  MCS_REQUIRE(i < tasks.size(), "interference_budgets: bad task index");
  MCS_REQUIRE(t >= 0, "interference_budgets: negative window");
  std::vector<std::uint64_t> budgets(tasks.size(), 0);
  for (const rt::TaskIndex j : tasks.higher_priority(i)) {
    budgets[j] = tasks[j].arrival->releases_in(t) + 1;
  }
  return budgets;
}

double ls_release_budget(const rt::TaskSet& tasks, rt::Time t,
                         bool ignore_ls) {
  MCS_REQUIRE(t >= 0, "ls_release_budget: negative window");
  if (ignore_ls) return 0.0;
  double releases = 0.0;
  for (rt::TaskIndex s = 0; s < tasks.size(); ++s) {
    if (!tasks[s].latency_sensitive) continue;
    releases += static_cast<double>(tasks[s].arrival->releases_in(t) + 1);
  }
  return releases;
}

namespace {
std::size_t interference_total(const rt::TaskSet& tasks, rt::TaskIndex i,
                               rt::Time t) {
  std::size_t total = 0;
  for (const std::uint64_t b : interference_budgets(tasks, i, t)) {
    total += static_cast<std::size_t>(b);
  }
  return total;
}
}  // namespace

std::size_t window_intervals_nls(const rt::TaskSet& tasks, rt::TaskIndex i,
                                 rt::Time t) {
  // Theorem 1 with the "at most" made explicit: blocking intervals cannot
  // outnumber the lower-priority tasks (each blocks at most once, Prop. 3),
  // and at least one interval before the execution is always needed for
  // tau_i's copy-in.
  const std::size_t blocking =
      std::min<std::size_t>(2, tasks.lower_priority(i).size());
  const std::size_t n = interference_total(tasks, i, t) + blocking + 1;
  return std::max<std::size_t>(n, 2);
}

std::size_t window_intervals_ls(const rt::TaskSet& tasks, rt::TaskIndex i,
                                rt::Time t) {
  // Corollary 1, same refinement: at most one blocking interval (Prop. 4).
  const std::size_t blocking =
      std::min<std::size_t>(1, tasks.lower_priority(i).size());
  const std::size_t n = interference_total(tasks, i, t) + blocking + 1;
  return std::max<std::size_t>(n, 2);
}

}  // namespace mcs::analysis
