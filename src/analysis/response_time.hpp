// Iterative worst-case response-time analysis (paper §V / §VI).
//
// For a task tau_i, the analysis starts from the minimum possible response
// R = l_i + C_i + u_i, derives the delay-window length t = R - C_i - u_i,
// solves the delay-maximization MILP (milp_formulation.hpp) to obtain a new
// tentative response R' = objective + u_i, and iterates until the window
// size stabilizes (the MILP value is a step function of t, so equal window
// sizes imply a fixpoint) or the deadline is exceeded.
//
// Safety under solver budgets: when branch & bound exhausts its node budget
// the LP *dual bound* is used instead of the incumbent — an upper bound on
// the true optimum, so the response-time bound stays safe (merely more
// pessimistic).  `used_relaxation_bound` reports when this happened.
#pragma once

#include <cstddef>

#include "analysis/budget.hpp"
#include "lp/milp.hpp"
#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::analysis {

struct AnalysisOptions {
  lp::MilpOptions milp;
  /// Solve only the LP relaxation (fast, safe, more pessimistic).
  bool lp_relaxation_only = false;
  /// Optional per-request degradation budget (non-owning; the caller keeps
  /// it alive across the call).  Once exceeded, every subsequent delay-MILP
  /// solve uses the LP relaxation dual bound instead of branch & bound —
  /// safe but more pessimistic — and the result is tagged `degraded`.  See
  /// analysis/budget.hpp for the safety/determinism contract.
  const SolveBudget* budget = nullptr;
  /// Treat every task as NLS — the analysis of the protocol of [3]
  /// (DESIGN.md §5.3).
  bool ignore_ls = false;
  /// Outer RTA iteration cap (each iteration enlarges the window).
  std::size_t max_outer_iterations = 64;
  /// First try the deadline-sized window and accept immediately when the
  /// bound fits (sound by monotonicity; the reported WCRT is then the
  /// deadline-window value, an upper bound on the least fixpoint).  Off by
  /// default: iterating from below converges at the *smallest* fixpoint
  /// window, whose MILPs are far cheaper than the deadline-sized one.
  bool fast_accept = false;

  AnalysisOptions() {
    // Analysis MILPs are small; a modest node budget keeps worst cases
    // bounded while virtually never triggering the relaxation fallback.
    milp.max_nodes = 20000;
    // Accept delay bounds within 0.5% of the proven optimum: the bound used
    // is the dual bound (safe), and proving the last fraction of a percent
    // is where branch & bound spends almost all of its time on the larger
    // windows.
    milp.relative_gap = 0.005;
  }
};

struct TaskBoundResult {
  /// Upper bound on the WCRT in ticks; kTimeMax when no bound below the
  /// deadline was established.
  rt::Time wcrt = rt::kTimeMax;
  bool schedulable = false;
  /// True when iteration stopped because the bound crossed the deadline.
  bool exceeded_deadline = false;
  /// True when any MILP fell back to its dual (relaxation) bound.
  bool used_relaxation_bound = false;
  /// True when any solve degraded to the LP relaxation because the
  /// request's SolveBudget was exceeded (implies used_relaxation_bound).
  bool degraded = false;
  std::size_t outer_iterations = 0;
  std::size_t milp_nodes = 0;
  std::size_t lp_iterations = 0;
};

/// Bounds the WCRT of `tasks[i]` under the proposed protocol (or, with
/// options.ignore_ls, under the protocol of [3]).  The task's
/// latency_sensitive flag selects between the NLS formulation and the LS
/// case (a)/(b) pair.
TaskBoundResult bound_response_time(const rt::TaskSet& tasks,
                                    rt::TaskIndex i,
                                    const AnalysisOptions& options = {});

/// Maps a (double) delay bound from the MILP onto integer ticks.  Rounds
/// *up* (DESIGN.md §5.1: bounds must never shrink when discretized): the
/// result is always >= `delay`.  Exposed for the regression tests guarding
/// that invariant.
rt::Time delay_to_ticks(double delay);

}  // namespace mcs::analysis
