// Sensitivity analysis: how much can a workload dimension grow before the
// task set stops being schedulable?  A design-space tool on top of the
// schedulability analyses — e.g. "how memory-intensive may my tasks get
// (gamma scaling) before the proposed protocol gives up?", the axis of the
// paper's Figure 2(e).
#pragma once

#include "analysis/schedulability.hpp"
#include "rt/task.hpp"

namespace mcs::analysis {

enum class ScalingDimension {
  kMemoryPhases,    ///< scale every l_i and u_i
  kExecutionTimes,  ///< scale every C_i
};

struct SensitivityResult {
  /// Largest tested factor that keeps the set schedulable; 0 when even the
  /// unscaled set fails.
  double max_factor = 0.0;
  /// Smallest tested factor that fails (search upper bracket).
  double min_failing_factor = 0.0;
  std::size_t analysis_runs = 0;
};

struct SensitivityOptions {
  AnalysisOptions analysis;
  double tolerance = 0.01;   ///< binary-search width on the factor
  double upper_limit = 64.0; ///< stop growing the bracket here
};

/// Binary-searches the largest scaling factor (>= 1) along `dimension`
/// under which `analyze(tasks, approach)` still reports schedulable.
/// Schedulability is monotone in both dimensions, so the search is sound.
SensitivityResult max_scaling_factor(const rt::TaskSet& tasks,
                                     Approach approach,
                                     ScalingDimension dimension,
                                     const SensitivityOptions& options = {});

}  // namespace mcs::analysis
