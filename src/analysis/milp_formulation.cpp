#include "analysis/milp_formulation.hpp"

#include <algorithm>
#include <string>

#include "analysis/window.hpp"
#include "support/contracts.hpp"

namespace mcs::analysis {

namespace {

using lp::LinExpr;
using lp::Model;
using lp::Relation;
using lp::Sense;
using lp::VarId;
using rt::TaskIndex;
using rt::Time;

constexpr VarId kNoVar{};

bool valid(VarId v) { return v.index != static_cast<std::size_t>(-1); }

double td(Time t) { return static_cast<double>(t); }

/// Expresses the task set's *current* LS marking in a patchable
/// formulation through column bounds: LE columns stay open only for tasks
/// that are latency-sensitive right now, CL columns only for tasks some
/// currently-LS higher-priority task could cancel (rule R3).  Everything
/// else is fixed to zero — structurally present for a future marking,
/// inert under this one.
void apply_ls_marking(DelayMilp& milp, const rt::TaskSet& tasks) {
  const std::size_t n = tasks.size();
  const auto cancelable_now = [&](TaskIndex j) {
    for (TaskIndex s = 0; s < n; ++s) {
      if (s != j && tasks[s].latency_sensitive &&
          tasks[s].priority < tasks[j].priority) {
        return true;
      }
    }
    return false;
  };
  for (TaskIndex j = 0; j < n; ++j) {
    const double le_ub = tasks[j].latency_sensitive ? 1.0 : 0.0;
    const double cl_ub = cancelable_now(j) ? 1.0 : 0.0;
    for (std::size_t k = 0; k < milp.num_intervals; ++k) {
      if (valid(milp.urgent_vars[j][k])) {
        milp.model.set_bounds(milp.urgent_vars[j][k], 0.0, le_ub);
      }
      if (valid(milp.cancel_vars[j][k])) {
        milp.model.set_bounds(milp.cancel_vars[j][k], 0.0, cl_ub);
      }
    }
  }
}

}  // namespace

const char* to_string(FormulationCase c) noexcept {
  switch (c) {
    case FormulationCase::kNls:
      return "nls";
    case FormulationCase::kLsCaseA:
      return "ls-case-a";
    case FormulationCase::kLsCaseB:
      return "ls-case-b";
  }
  return "unknown";
}

DelayMilp build_delay_milp(const rt::TaskSet& tasks, TaskIndex i, Time t,
                           FormulationCase fcase, bool ignore_ls,
                           bool patchable_ls) {
  MCS_REQUIRE(i < tasks.size(), "build_delay_milp: bad task index");
  MCS_REQUIRE(t >= 0, "build_delay_milp: negative window");
  const bool analyzed_ls = fcase != FormulationCase::kNls;
  MCS_REQUIRE(!ignore_ls || !analyzed_ls,
              "LS cases are meaningless when LS semantics are disabled");
  if (analyzed_ls) {
    MCS_REQUIRE(tasks[i].latency_sensitive,
                "LS formulation for a non-LS task");
  }
  // With LS semantics disabled there is nothing marking-dependent to
  // patch, so a "patchable" build degenerates to the exact formulation.
  const bool patch = patchable_ls && !ignore_ls;

  const std::size_t n = tasks.size();
  const auto is_ls = [&](TaskIndex j) {
    return !ignore_ls && tasks[j].latency_sensitive;
  };
  // Structural admission marking: under a patchable build every task may
  // become latency-sensitive over a greedy marking run, so LE/CL columns
  // (and the big-Ms below) cover that superset; the current marking is
  // then expressed through column bounds only (apply_ls_marking).
  const auto may_be_ls = [&](TaskIndex j) { return patch || is_ls(j); };
  const auto my_prio = tasks[i].priority;
  const auto is_lp = [&](TaskIndex j) { return tasks[j].priority > my_prio; };

  // A task's copy-in can be cancelled iff some higher-priority LS task
  // exists (rule R3).
  const auto cancelable = [&](TaskIndex j) {
    for (TaskIndex s = 0; s < n; ++s) {
      if (s != j && may_be_ls(s) && tasks[s].priority < tasks[j].priority) {
        return true;
      }
    }
    return false;
  };

  // --- Window size ----------------------------------------------------------
  std::size_t N = 0;
  switch (fcase) {
    case FormulationCase::kNls:
      N = window_intervals_nls(tasks, i, t);
      break;
    case FormulationCase::kLsCaseA:
      N = window_intervals_ls(tasks, i, t);
      break;
    case FormulationCase::kLsCaseB:
      N = 2;
      break;
  }
  MCS_ASSERT(N >= 2, "window must have at least two intervals");
  const auto budgets = interference_budgets(tasks, i, t);

  // --- Structural admission of phases per interval ---------------------------
  // exec_allowed(j, k): may E_j^k be one?  k ranges over [0, N-2]; tau_i's
  // own execution is fixed in I_{N-1} and never a variable.
  const auto exec_allowed = [&](TaskIndex j, std::size_t k) {
    if (j == i) return false;
    if (fcase == FormulationCase::kLsCaseB) return k == 0;
    if (is_lp(j)) {
      // NLS: blocking only in I_0 / I_1 (Constraint 3).  LS case (a):
      // blocking only in I_0 (Constraint 14).
      return fcase == FormulationCase::kNls ? k <= 1 : k == 0;
    }
    return k <= N - 2;
  };
  // urgent_allowed(j, k): may LE_j^k be one?  Only LS tasks (Constraint 4).
  const auto urgent_allowed = [&](TaskIndex j, std::size_t k) {
    if (j == i || !may_be_ls(j)) return false;
    if (fcase == FormulationCase::kLsCaseB) return k == 0;
    if (is_lp(j)) {
      return fcase == FormulationCase::kNls ? k <= 1 : k == 0;
    }
    return k <= N - 2;
  };
  // cancel_allowed(j, k): may CL_j^k be one?  k ranges over [0, N-3] for
  // the long cases and {0} for case (b); lower-priority tasks only in I_0
  // (Constraint 3).
  const auto cancel_allowed = [&](TaskIndex j, std::size_t k) {
    if (!cancelable(j)) return false;
    if (fcase == FormulationCase::kLsCaseB) return k == 0;
    if (N < 3 || k > N - 3) return false;
    if (is_lp(j)) return k == 0;
    return true;
  };

  // --- Per-interval bounds on CPU and DMA work -------------------------------
  // cpu_ub[k]: largest CPU occupancy any single execution can cause in I_k.
  // dma_ub[k]: largest possible copy-out + copy-in time in I_k given which
  // phases are structurally admitted there.  Both feed tight per-interval
  // big-Ms, Delta upper bounds, and the one-executor cut below.
  std::vector<double> cpu_ub(N, 0.0);
  std::vector<double> dma_ub(N, 0.0);
  for (std::size_t k = 0; k < N; ++k) {
    if (k == N - 1) {
      cpu_ub[k] = td(fcase == FormulationCase::kLsCaseB
                         ? tasks[i].copy_in + tasks[i].exec
                         : tasks[i].exec);
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (exec_allowed(j, k)) {
          cpu_ub[k] = std::max(cpu_ub[k], td(tasks[j].exec));
        }
        if (urgent_allowed(j, k)) {
          cpu_ub[k] =
              std::max(cpu_ub[k], td(tasks[j].copy_in + tasks[j].exec));
        }
      }
    }
    // Copy-out side: whatever may execute in I_{k-1} (unknown pre-window
    // task for I_0).
    double cou = 0.0;
    if (k == 0) {
      cou = td(tasks.max_copy_out());
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (exec_allowed(j, k - 1) || urgent_allowed(j, k - 1)) {
          cou = std::max(cou, td(tasks[j].copy_out));
        }
      }
    }
    // Copy-in side: loads for I_{k+1} plus possible cancellations, with the
    // fixed boundary terms of Constraint 12.
    double cin = 0.0;
    if (k == N - 1) {
      cin = td(tasks.max_copy_in());
    } else if (k == N - 2 && fcase != FormulationCase::kLsCaseB) {
      cin = td(tasks[i].copy_in);
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (k + 1 < N && exec_allowed(j, k + 1)) {
          cin = std::max(cin, td(tasks[j].copy_in));
        }
        if (cancel_allowed(j, k)) {
          cin = std::max(cin, td(tasks[j].copy_in));
        }
      }
    }
    dma_ub[k] = cou + cin;
  }

  // --- Variables --------------------------------------------------------------
  DelayMilp out;
  Model& m = out.model;
  out.num_intervals = N;
  out.budget_constraints.assign(n, DelayMilp::kNoConstraint);
  out.delta_vars.resize(N);
  out.exec_vars.assign(n, std::vector<VarId>(N, kNoVar));
  out.urgent_vars.assign(n, std::vector<VarId>(N, kNoVar));
  out.cancel_vars.assign(n, std::vector<VarId>(N, kNoVar));

  // Exact capacity hints: the admission predicates fully determine how many
  // variables and constraints the loops below create, so derive the counts
  // up front and reserve once instead of reallocating along the way.
  std::size_t reserved_vars = 2 * N + 2;  // Delta_k, alpha_k, copy boundaries
  std::size_t reserved_rows = 3 * N + (N - 1);  // delta_{cpu,dma,sum,1exec}
  {
    bool any_cl = false;
    for (TaskIndex j = 0; j < n; ++j) {
      for (std::size_t k = 0; k + 1 < N; ++k) {
        if (exec_allowed(j, k)) ++reserved_vars;
        if (urgent_allowed(j, k)) ++reserved_vars;
        if (cancel_allowed(j, k)) ++reserved_vars;
        any_cl = any_cl || cancel_allowed(j, k);
      }
    }
    for (std::size_t k = 0; k + 1 < N; ++k) {
      bool any = false;
      for (TaskIndex j = 0; j < n && !any; ++j) {
        any = exec_allowed(j, k) || urgent_allowed(j, k);
      }
      if (any) ++reserved_rows;  // one_exec_k
    }
    for (std::size_t k = 0; k + 2 < N; ++k) {
      bool copyin = false;
      bool urgent = false;
      for (TaskIndex j = 0; j < n && !(copyin && urgent); ++j) {
        copyin = copyin || exec_allowed(j, k + 1) || cancel_allowed(j, k);
        urgent = urgent || urgent_allowed(j, k + 1);
      }
      if (copyin) ++reserved_rows;
      if (urgent) ++reserved_rows;
    }
    for (TaskIndex j = 0; j < n; ++j) {
      if (j == i) continue;
      bool any = false;
      for (std::size_t k = 0; k + 1 < N && !any; ++k) {
        any = exec_allowed(j, k) || urgent_allowed(j, k);
      }
      if (any) ++reserved_rows;  // budget_j
    }
    if (any_cl) ++reserved_rows;  // cancellation_budget
  }
  m.reserve_variables(reserved_vars);
  m.reserve_constraints(reserved_rows);

  for (std::size_t k = 0; k < N; ++k) {
    out.delta_vars[k] = m.add_continuous(
        0.0, std::max(cpu_ub[k], dma_ub[k]), "Delta_" + std::to_string(k));
  }
  std::vector<VarId> alpha(N);
  for (std::size_t k = 0; k < N; ++k) {
    alpha[k] = m.add_binary("alpha_" + std::to_string(k));
  }
  out.alpha_vars = alpha;
  for (TaskIndex j = 0; j < n; ++j) {
    for (std::size_t k = 0; k + 1 < N; ++k) {
      if (exec_allowed(j, k)) {
        out.exec_vars[j][k] = m.add_binary(
            "E_" + std::to_string(j) + "_" + std::to_string(k));
      }
      if (urgent_allowed(j, k)) {
        out.urgent_vars[j][k] = m.add_binary(
            "LE_" + std::to_string(j) + "_" + std::to_string(k));
      }
      if (cancel_allowed(j, k)) {
        out.cancel_vars[j][k] = m.add_binary(
            "CL_" + std::to_string(j) + "_" + std::to_string(k));
      }
    }
  }
  // Copy-out of the unknown pre-window task in I_0 (Constraint 12) and
  // copy-in for an unknown post-window task in I_{N-1}.
  const VarId copyout0 =
      m.add_continuous(0.0, td(tasks.max_copy_out()), "copyout0");
  const VarId copyin_last =
      m.add_continuous(0.0, td(tasks.max_copy_in()), "copyin_last");

  // --- Helper expressions ------------------------------------------------------
  const auto cpu_work = [&](std::size_t k) {
    LinExpr cpu;
    if (k == N - 1) {
      // tau_i executes in the last interval; in case (b) the CPU also
      // performs its copy-in sequentially (Constraint 15).
      const Time own = fcase == FormulationCase::kLsCaseB
                           ? tasks[i].copy_in + tasks[i].exec
                           : tasks[i].exec;
      cpu += td(own);
      return cpu;
    }
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(out.exec_vars[j][k])) {
        cpu += td(tasks[j].exec) * LinExpr(out.exec_vars[j][k]);
      }
      if (valid(out.urgent_vars[j][k])) {
        cpu += td(tasks[j].copy_in + tasks[j].exec) *
               LinExpr(out.urgent_vars[j][k]);
      }
    }
    return cpu;
  };

  const auto dma_work = [&](std::size_t k) {
    LinExpr dma;
    // Copy-out of whatever executed in I_{k-1} (Constraint 2 substituted).
    if (k == 0) {
      dma += LinExpr(copyout0);
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (valid(out.exec_vars[j][k - 1])) {
          dma += td(tasks[j].copy_out) * LinExpr(out.exec_vars[j][k - 1]);
        }
        if (valid(out.urgent_vars[j][k - 1])) {
          dma += td(tasks[j].copy_out) * LinExpr(out.urgent_vars[j][k - 1]);
        }
      }
    }
    // Copy-in for whatever executes in I_{k+1} (Constraint 1 substituted),
    // plus cancelled copy-ins (Constraint 10's CL term).
    if (k == N - 1) {
      dma += LinExpr(copyin_last);
    } else if (k == N - 2 && fcase != FormulationCase::kLsCaseB) {
      dma += td(tasks[i].copy_in);  // tau_i's own copy-in (Constraint 12)
    } else {
      for (TaskIndex j = 0; j < n; ++j) {
        if (k + 1 < N && valid(out.exec_vars[j][k + 1])) {
          dma += td(tasks[j].copy_in) * LinExpr(out.exec_vars[j][k + 1]);
        }
      }
    }
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(out.cancel_vars[j][k])) {
        dma += td(tasks[j].copy_in) * LinExpr(out.cancel_vars[j][k]);
      }
    }
    return dma;
  };

  // --- Constraints ----------------------------------------------------------
  // Constraint 5: exactly one execution per interval I_1 .. I_{N-2}.  While
  // tau_i is pending the ready queue is non-empty, so R2 schedules a
  // copy-in (or a cancellation happens, which promotes an urgent task) in
  // every interval and R5 executes the result in the next one — the CPU is
  // never idle after I_0.  I_0 itself (the release interval) may or may not
  // contain an execution (<= 1).  The window_intervals_* clamp guarantees
  // the equality system is structurally feasible (DESIGN.md §5.5).
  for (std::size_t k = 0; k + 1 < N; ++k) {
    LinExpr execs;
    bool any = false;
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(out.exec_vars[j][k])) {
        execs += LinExpr(out.exec_vars[j][k]);
        any = true;
      }
      if (valid(out.urgent_vars[j][k])) {
        execs += LinExpr(out.urgent_vars[j][k]);
        any = true;
      }
    }
    const Relation rel =
        (k == 0 || fcase == FormulationCase::kLsCaseB) ? Relation::kLe
                                                       : Relation::kEq;
    MCS_ASSERT(any || rel == Relation::kLe,
               "equality interval without admissible executions");
    if (any) {
      m.add_constraint(execs, rel, 1.0, "one_exec_" + std::to_string(k));
    }
  }

  // Constraint 6: exactly one copy-in operation (completed or cancelled)
  // per interval I_0 .. I_{N-3} — R2 always starts one while tau_i waits.
  for (std::size_t k = 0; k + 2 < N; ++k) {
    LinExpr copyins;
    bool any = false;
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(out.exec_vars[j][k + 1])) {
        copyins += LinExpr(out.exec_vars[j][k + 1]);
        any = true;
      }
      if (valid(out.cancel_vars[j][k])) {
        copyins += LinExpr(out.cancel_vars[j][k]);
        any = true;
      }
    }
    if (any) {
      const Relation rel = fcase == FormulationCase::kLsCaseB
                               ? Relation::kLe
                               : Relation::kEq;
      m.add_constraint(copyins, rel, 1.0,
                       "one_copyin_" + std::to_string(k));
    }
  }

  // Constraint 7: interference budgets for hp tasks, single execution for
  // lp tasks.
  for (TaskIndex j = 0; j < n; ++j) {
    if (j == i) continue;
    LinExpr total;
    bool any = false;
    for (std::size_t k = 0; k + 1 < N; ++k) {
      if (valid(out.exec_vars[j][k])) {
        total += LinExpr(out.exec_vars[j][k]);
        any = true;
      }
      if (valid(out.urgent_vars[j][k])) {
        total += LinExpr(out.urgent_vars[j][k]);
        any = true;
      }
    }
    if (!any) continue;
    const double budget =
        is_lp(j) ? 1.0 : static_cast<double>(budgets[j]);
    m.add_constraint(total, Relation::kLe, budget,
                     "budget_" + tasks[j].name);
    out.budget_constraints[j] = m.num_constraints() - 1;
  }

  // Constraint 8: an urgent execution in I_{k+1} requires a cancelled
  // copy-in in I_k (tau_i is pending, so "no copy-in" cannot explain it).
  for (std::size_t k = 0; k + 2 < N; ++k) {
    LinExpr cancels;
    LinExpr urgents;
    bool any = false;
    for (TaskIndex j = 0; j < n; ++j) {
      if (valid(out.cancel_vars[j][k])) {
        cancels += LinExpr(out.cancel_vars[j][k]);
      }
      if (valid(out.urgent_vars[j][k + 1])) {
        urgents += LinExpr(out.urgent_vars[j][k + 1]);
        any = true;
      }
    }
    if (any) {
      m.add_constraint(cancels, Relation::kGe, urgents,
                       "cancel_before_urgent_" + std::to_string(k));
    }
  }

  // Cancellation budget (protocol property, tightening): every cancellation
  // is triggered by the release of one latency-sensitive job (R3), so the
  // total number of CL events in the window cannot exceed the number of LS
  // job releases, bounded by sum over LS tasks of (eta_s(t) + 1).
  {
    LinExpr cancels;
    bool any_cl = false;
    for (TaskIndex j = 0; j < n; ++j) {
      for (std::size_t k = 0; k + 1 < N; ++k) {
        if (valid(out.cancel_vars[j][k])) {
          cancels += LinExpr(out.cancel_vars[j][k]);
          any_cl = true;
        }
      }
    }
    if (any_cl) {
      m.add_constraint(cancels, Relation::kLe,
                       ls_release_budget(tasks, t, ignore_ls),
                       "cancellation_budget");
      out.cancellation_budget_constraint = m.num_constraints() - 1;
    }
  }

  // Constraints 9-13 (substituted): interval length = max(CPU, DMA) via the
  // alpha big-M pair, plus the valid cut Delta <= CPU + DMA (max of two
  // non-negative quantities never exceeds their sum).  The cut does not
  // change the integer optimum but tightens the LP relaxation enormously —
  // without it a fractional alpha buys up to big_m/2 of free slack per
  // interval, which is what used to exhaust the branch & bound budget.
  for (std::size_t k = 0; k < N; ++k) {
    const LinExpr cpu = cpu_work(k);
    const LinExpr dma = dma_work(k);
    const double m_k = std::max(cpu_ub[k], dma_ub[k]);
    m.add_constraint(LinExpr(out.delta_vars[k]), Relation::kLe,
                     cpu + m_k * LinExpr(alpha[k]),
                     "delta_cpu_" + std::to_string(k));
    m.add_constraint(
        LinExpr(out.delta_vars[k]), Relation::kLe,
        dma + m_k * (LinExpr(1.0) - LinExpr(alpha[k])),
        "delta_dma_" + std::to_string(k));
    m.add_constraint(LinExpr(out.delta_vars[k]), Relation::kLe, cpu + dma,
                     "delta_sum_" + std::to_string(k));
    // One-executor cut: with at most one execution per interval,
    //   Delta_k <= dma_ub[k] + sum_j (E/LE)_j^k * max(0, work_j - dma_ub[k])
    // is valid (executing j gives max(work_j, dma_k) <= max(work_j,
    // dma_ub); an idle CPU gives dma_k <= dma_ub).  This caps the LP trick
    // of claiming cpu + dma per interval and is the single most effective
    // relaxation tightener for these instances.
    if (k + 1 < N) {
      LinExpr rhs(dma_ub[k]);
      for (TaskIndex j = 0; j < n; ++j) {
        if (valid(out.exec_vars[j][k])) {
          const double extra =
              std::max(0.0, td(tasks[j].exec) - dma_ub[k]);
          if (extra > 0.0) {
            rhs += extra * LinExpr(out.exec_vars[j][k]);
          }
        }
        if (valid(out.urgent_vars[j][k])) {
          const double extra = std::max(
              0.0, td(tasks[j].copy_in + tasks[j].exec) - dma_ub[k]);
          if (extra > 0.0) {
            rhs += extra * LinExpr(out.urgent_vars[j][k]);
          }
        }
      }
      m.add_constraint(LinExpr(out.delta_vars[k]), Relation::kLe, rhs,
                       "delta_one_exec_" + std::to_string(k));
    }
  }

  // Objective (Eq. 1 without the constant u_i, which the caller adds).
  LinExpr objective;
  for (std::size_t k = 0; k < N; ++k) {
    objective += LinExpr(out.delta_vars[k]);
  }
  m.set_objective(Sense::kMaximize, objective);

  MCS_ASSERT(m.num_variables() == reserved_vars &&
                 m.num_constraints() == reserved_rows,
             "build_delay_milp: capacity hints diverged from construction");

  if (patch) {
    out.patchable_ls = true;
    apply_ls_marking(out, tasks);
  }
  return out;
}

void update_delay_milp(DelayMilp& milp, const rt::TaskSet& tasks,
                       TaskIndex i, Time t, bool ignore_ls) {
  MCS_REQUIRE(i < tasks.size(), "update_delay_milp: bad task index");
  MCS_REQUIRE(t >= 0, "update_delay_milp: negative window");
  MCS_REQUIRE(milp.budget_constraints.size() == tasks.size(),
              "update_delay_milp: formulation built for a different set");
  const auto budgets = interference_budgets(tasks, i, t);
  const auto my_prio = tasks[i].priority;
  for (TaskIndex j = 0; j < tasks.size(); ++j) {
    const std::size_t row = milp.budget_constraints[j];
    if (row == DelayMilp::kNoConstraint) continue;
    const bool lp_task = tasks[j].priority > my_prio;
    milp.model.set_rhs(row,
                       lp_task ? 1.0 : static_cast<double>(budgets[j]));
  }
  if (milp.cancellation_budget_constraint != DelayMilp::kNoConstraint) {
    milp.model.set_rhs(milp.cancellation_budget_constraint,
                       ls_release_budget(tasks, t, ignore_ls));
  }
  if (milp.patchable_ls) {
    apply_ls_marking(milp, tasks);
  }
}

}  // namespace mcs::analysis
