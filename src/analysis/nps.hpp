// Classical non-preemptive fixed-priority response-time analysis — the NPS
// baseline of the paper's evaluation (§VII, [16]).
//
// Under NPS there is no DMA overlap: each job occupies the CPU for
// e_i = l_i + C_i + u_i, non-preemptively.  The analysis is the standard
// level-i active period formulation (George et al. 1996):
//
//   blocking      B_i = max over lower-priority e_j
//   active period L   = B_i + sum_{hp(i) and i} eta_j(L) e_j   (fixpoint)
//   q-th job start    s_q = B_i + q e_i + sum_{hp(i)} eta^closed_j(s_q) e_j
//   response          R_i = max_q (s_q + e_i - q T_i)
//
// with eta^closed counting releases in a closed window (arrival.hpp).
#pragma once

#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::analysis {

struct NpsTaskBound {
  rt::Time wcrt = rt::kTimeMax;  ///< kTimeMax when the analysis diverged
  bool schedulable = false;
};

/// WCRT bound of `tasks[i]` under NPS.
NpsTaskBound nps_bound(const rt::TaskSet& tasks, rt::TaskIndex i);

/// True iff every task passes the NPS analysis.
bool nps_schedulable(const rt::TaskSet& tasks);

}  // namespace mcs::analysis
