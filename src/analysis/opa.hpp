// Audsley's Optimal Priority Assignment (OPA) on top of the schedulability
// analyses — an extension beyond the paper, which assumes priorities are
// given (we default to deadline-monotonic, DESIGN.md §5.2).
//
// OPA applicability: a schedulability test is OPA-compatible when a task's
// verdict depends only on (a) its own parameters and (b) the *set* of
// higher/lower-priority tasks, not their relative order.  All three
// analyses in this library qualify: the MILP formulation uses hp(i) only
// through interference budgets and lp(i) only through membership, and the
// NPS analysis is the classical one.  (For the proposed protocol the LS
// *flags* are part of the task parameters and must be fixed up-front; the
// greedy marking of §VI is orthogonal to priority assignment.)
//
// The classic result: OPA finds a feasible priority order whenever one
// exists for the given test, dominating deadline-monotonic assignment —
// notably so under non-preemptive blocking, where DM is not optimal.
#pragma once

#include <functional>
#include <vector>

#include "analysis/schedulability.hpp"
#include "rt/task.hpp"

namespace mcs::analysis {

struct OpaResult {
  bool schedulable = false;
  /// Feasible priority per task (valid only when schedulable).
  std::vector<rt::Priority> priorities;
  /// Number of single-task schedulability tests performed.
  std::size_t test_count = 0;
};

/// Generic Audsley loop: `test(tasks, i)` must decide whether task i is
/// schedulable given the priorities currently set in `tasks` (only the
/// hp/lp partition around i matters).
OpaResult audsley_assign(
    const rt::TaskSet& tasks,
    const std::function<bool(const rt::TaskSet&, rt::TaskIndex)>& test);

/// OPA instantiated with one of the library's analyses.  For kProposed the
/// tasks' existing latency_sensitive flags are honoured as fixed
/// parameters (no greedy marking inside the OPA loop).
OpaResult audsley_assign(const rt::TaskSet& tasks, Approach approach,
                         const AnalysisOptions& options = {});

}  // namespace mcs::analysis
