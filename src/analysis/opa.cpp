#include "analysis/opa.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/engine.hpp"
#include "support/contracts.hpp"

namespace mcs::analysis {

OpaResult audsley_assign(
    const rt::TaskSet& tasks,
    const std::function<bool(const rt::TaskSet&, rt::TaskIndex)>& test) {
  MCS_REQUIRE(test != nullptr, "audsley_assign: empty test");
  const std::size_t n = tasks.size();
  OpaResult result;
  result.priorities.assign(n, 0);

  rt::TaskSet working = tasks;
  std::vector<bool> assigned(n, false);

  // Assign priority levels from the lowest (largest value) upwards.
  for (std::size_t level = n; level > 0; --level) {
    const auto priority = static_cast<rt::Priority>(level - 1);
    bool placed = false;
    for (rt::TaskIndex candidate = 0; candidate < n && !placed; ++candidate) {
      if (assigned[candidate]) continue;
      // Tentatively put `candidate` at this (lowest unassigned) level and
      // every other unassigned task above it.  Only the partition matters,
      // so any consistent order of the others works.
      rt::Priority next_high = 0;
      for (rt::TaskIndex j = 0; j < n; ++j) {
        if (j == candidate) {
          working[j].priority = priority;
        } else if (!assigned[j]) {
          working[j].priority = next_high++;
        }
        // Already-assigned tasks keep their (lower) levels.
      }
      ++result.test_count;
      if (test(working, candidate)) {
        assigned[candidate] = true;
        result.priorities[candidate] = priority;
        placed = true;
        // Freeze the candidate's level for subsequent rounds.
        working[candidate].priority = priority;
      }
    }
    if (!placed) {
      return result;  // no task can live at this level: infeasible
    }
  }
  result.schedulable = true;
  return result;
}

OpaResult audsley_assign(const rt::TaskSet& tasks, Approach approach,
                         const AnalysisOptions& options) {
  // Engine-backed: each candidate test reuses the engine's cached NPS
  // bounds and formulations where the fingerprint allows (priority
  // shuffles drop them, but the final converging rounds repeat task sets).
  AnalysisEngine engine;
  return engine.audsley_assign(tasks, approach, options);
}

}  // namespace mcs::analysis
