#include "analysis/lint.hpp"

#include "check/model_lint.hpp"

namespace mcs::analysis {

namespace {

check::FormulationCase to_check_case(FormulationCase fcase) {
  switch (fcase) {
    case FormulationCase::kNls:
      return check::FormulationCase::kNls;
    case FormulationCase::kLsCaseA:
      return check::FormulationCase::kLsCaseA;
    case FormulationCase::kLsCaseB:
      return check::FormulationCase::kLsCaseB;
  }
  return check::FormulationCase::kNls;
}

}  // namespace

check::FormulationView formulation_view(const DelayMilp& milp) {
  check::FormulationView view;
  view.model = &milp.model;
  view.num_intervals = milp.num_intervals;
  view.delta_vars = milp.delta_vars;
  view.alpha_vars = milp.alpha_vars;
  view.exec_vars = milp.exec_vars;
  view.urgent_vars = milp.urgent_vars;
  view.cancel_vars = milp.cancel_vars;
  view.budget_constraints = milp.budget_constraints;
  view.cancellation_budget_constraint = milp.cancellation_budget_constraint;
  view.patchable_ls = milp.patchable_ls;
  static_assert(check::FormulationView::kNoConstraint ==
                    DelayMilp::kNoConstraint,
                "sentinel values must agree for the index copy above");
  return view;
}

check::CheckReport lint_delay_milp(const DelayMilp& milp,
                                   const rt::TaskSet& tasks,
                                   rt::TaskIndex i, rt::Time t,
                                   FormulationCase fcase, bool ignore_ls) {
  return check::lint_formulation(formulation_view(milp), tasks, i, t,
                                 to_check_case(fcase), ignore_ls);
}

check::CheckReport verify_patched_equivalence(const DelayMilp& milp,
                                              const rt::TaskSet& tasks,
                                              rt::TaskIndex i, rt::Time t,
                                              FormulationCase fcase,
                                              bool ignore_ls) {
  const DelayMilp fresh =
      build_delay_milp(tasks, i, t, fcase, ignore_ls, milp.patchable_ls);
  return check::diff_models(milp.model, fresh.model);
}

}  // namespace mcs::analysis
