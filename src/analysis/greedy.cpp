#include "analysis/greedy.hpp"

#include <algorithm>

#include "support/contracts.hpp"

namespace mcs::analysis {

ProposedResult analyze_proposed(const rt::TaskSet& tasks,
                                const AnalysisOptions& options) {
  MCS_REQUIRE(!options.ignore_ls,
              "analyze_proposed: ignore_ls belongs to the WP baseline");
  ProposedResult result;
  result.ls_flags.assign(tasks.size(), false);

  rt::TaskSet working = tasks;
  for (rt::TaskIndex i = 0; i < working.size(); ++i) {
    working[i].latency_sensitive = false;  // paper: start all-NLS
  }

  // At most one promotion per round and at most n rounds.
  for (std::size_t round = 0; round <= tasks.size(); ++round) {
    ++result.rounds;
    result.per_task.assign(tasks.size(), {});
    bool all_ok = true;
    rt::TaskIndex failing = 0;

    // Analyze in priority order so the chosen promotion is deterministic:
    // the highest-priority deadline-missing task is promoted first.
    for (const rt::TaskIndex i : working.by_priority()) {
      const TaskBoundResult bound = bound_response_time(working, i, options);
      result.per_task[i] = bound;
      result.any_relaxation_fallback |= bound.used_relaxation_bound;
      result.total_milp_nodes += bound.milp_nodes;
      if (!bound.schedulable) {
        all_ok = false;
        failing = i;
        break;  // re-analysis is needed anyway once LS flags change
      }
    }

    if (all_ok) {
      result.schedulable = true;
      for (rt::TaskIndex i = 0; i < working.size(); ++i) {
        result.ls_flags[i] = working[i].latency_sensitive;
      }
      return result;
    }
    if (working[failing].latency_sensitive) {
      // Already LS and still missing: unschedulable (paper §VI).
      return result;
    }
    working[failing].latency_sensitive = true;
  }
  return result;  // defensive: cannot be reached (n+1 rounds, n promotions)
}

WpResult analyze_wp(const rt::TaskSet& tasks, const AnalysisOptions& options) {
  AnalysisOptions wp_options = options;
  wp_options.ignore_ls = true;

  WpResult result;
  result.per_task.assign(tasks.size(), {});
  result.schedulable = true;
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const TaskBoundResult bound =
        bound_response_time(tasks, i, wp_options);
    result.per_task[i] = bound;
    result.any_relaxation_fallback |= bound.used_relaxation_bound;
    result.total_milp_nodes += bound.milp_nodes;
    if (!bound.schedulable) {
      result.schedulable = false;
      // Keep analyzing the rest so callers see every per-task bound.
    }
  }
  return result;
}

}  // namespace mcs::analysis
