#include "analysis/greedy.hpp"

#include "analysis/engine.hpp"

namespace mcs::analysis {

// The greedy LS-marking loop and the WP baseline live in AnalysisEngine
// (engine.cpp), where one patchable formulation per (task, case) survives
// every promotion round; these wrappers reproduce the historical one-shot
// behavior through a throwaway engine.

ProposedResult analyze_proposed(const rt::TaskSet& tasks,
                                const AnalysisOptions& options,
                                const WpResult* wp_round0) {
  AnalysisEngine engine;
  return engine.analyze_proposed(tasks, options, wp_round0);
}

WpResult analyze_wp(const rt::TaskSet& tasks, const AnalysisOptions& options) {
  AnalysisEngine engine;
  return engine.analyze_wp(tasks, options);
}

}  // namespace mcs::analysis
