// Window sizing for the MILP-based response-time analysis (paper §V).
//
// Theorem 1:   for an NLS task, the number of intervals between its release
//              and the end of its execution phase is bounded by
//              N_i(t) = sum_{j in hp(i)} (eta_j(t) + 1) + 3.
// Corollary 1: for an LS task the bound is
//              N_i(t) = sum_{j in hp(i)} (eta_j(t) + 1) + 2
//              (at most one blocking interval instead of two).
#pragma once

#include <cstddef>
#include <vector>

#include "rt/task.hpp"
#include "rt/types.hpp"

namespace mcs::analysis {

/// Per-higher-priority-task interfering-instance budgets eta_j(t) + 1 for a
/// window of length `t`, indexed like `tasks` (entries for non-hp tasks are
/// zero).
std::vector<std::uint64_t> interference_budgets(const rt::TaskSet& tasks,
                                                rt::TaskIndex i, rt::Time t);

/// Upper bound on the number of latency-sensitive job releases inside a
/// window of length `t`: sum over LS tasks of (eta_s(t) + 1).  Every
/// copy-in cancellation is triggered by one such release (rule R3), so this
/// caps the MILP's cancellation budget.  With `ignore_ls` the result is 0.
double ls_release_budget(const rt::TaskSet& tasks, rt::Time t,
                         bool ignore_ls = false);

/// Theorem 1 bound (task analyzed as NLS).
std::size_t window_intervals_nls(const rt::TaskSet& tasks, rt::TaskIndex i,
                                 rt::Time t);

/// Corollary 1 bound (task analyzed as LS, case (a)).
std::size_t window_intervals_ls(const rt::TaskSet& tasks, rt::TaskIndex i,
                                rt::Time t);

}  // namespace mcs::analysis
