#include "analysis/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/milp_formulation.hpp"
#include "analysis/window.hpp"
#include "check/check.hpp"
#include "check/presolve_audit.hpp"
#include "lp/milp.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace mcs::analysis {

namespace {

using rt::Time;

namespace telemetry = support::telemetry;

/// Outcome of one delay-MILP solve (same contract as the pre-engine
/// response_time.cpp helper).
struct DelayBound {
  bool valid = false;         ///< a finite safe bound was obtained
  double delay = 0.0;         ///< upper bound on sum of interval lengths
  bool relaxation = false;    ///< dual bound used (budget exhausted)
  bool degraded = false;      ///< SolveBudget exceeded: LP dual bound used
  std::size_t nodes = 0;
  std::size_t lp_iterations = 0;
};

/// Everything about a task that the delay MILP depends on *except* the LS
/// flag (flags are expressed through patches, not rebuilds).  Arrival
/// curves are compared by identity: the analysis only ever shares them via
/// the TaskSet copy constructor, and a false mismatch merely costs a
/// rebuild.
struct TaskSig {
  Time exec = 0;
  Time copy_in = 0;
  Time copy_out = 0;
  Time period = 0;
  Time deadline = 0;
  rt::Priority priority = 0;
  const void* arrival = nullptr;

  bool operator==(const TaskSig&) const = default;
};

/// Debug audit hook (docs/LINTING.md): lints every formulation the engine
/// is about to solve and — for cache hits, at level 2 — rebuilds it from
/// scratch to prove the patch path produced the identical model.  Folds
/// to nothing when MCS_CHECK_LEVEL compiles to 0.
void audit_formulation(const DelayMilp& milp, const rt::TaskSet& tasks,
                       rt::TaskIndex i, Time t, FormulationCase fcase,
                       bool ignore_ls, bool patched) {
  if (!check::enabled(check::kLevelLint)) {
    return;
  }
  check::CheckReport report = lint_delay_milp(milp, tasks, i, t, fcase,
                                              ignore_ls);
  telemetry::count("check.models_audited");
  if (patched && check::enabled(check::kLevelDifferential)) {
    report.merge(
        verify_patched_equivalence(milp, tasks, i, t, fcase, ignore_ls));
    telemetry::count("check.patches_verified");
  }
  if (!report.clean()) {
    telemetry::count("check.diagnostics_emitted", report.diagnostics.size());
  }
  if (report.error_count() > 0) {
    std::string detail = "delay MILP audit failed for task " +
                         tasks[i].name + " at t=" + std::to_string(t) + ":";
    for (const check::Diagnostic& d : report.diagnostics) {
      detail += "\n  " + check::render(d);
    }
    support::contract_fail("invariant", "mcs::check formulation audit",
                           __FILE__, __LINE__, detail);
  }
}

/// Debug audit hook: every incumbent a MILP session returns has travelled
/// through presolve, node-level propagation, and postsolve — re-verify it
/// against the pristine formulation model (MCS-F303/F304).  Folds to
/// nothing when MCS_CHECK_LEVEL compiles to 0.
void audit_incumbent(const lp::Model& model, const lp::MilpResult& res,
                     const rt::TaskSet& tasks, rt::TaskIndex i, Time t) {
  if (!check::enabled(check::kLevelLint) || !res.has_incumbent) {
    return;
  }
  const check::CheckReport report =
      check::audit_postsolve(model, res.values, res.objective);
  telemetry::count("check.incumbents_audited");
  if (report.error_count() > 0) {
    telemetry::count("check.diagnostics_emitted", report.diagnostics.size());
    std::string detail = "postsolved incumbent audit failed for task " +
                         tasks[i].name + " at t=" + std::to_string(t) + ":";
    for (const check::Diagnostic& d : report.diagnostics) {
      detail += "\n  " + check::render(d);
    }
    support::contract_fail("invariant", "mcs::check postsolve audit",
                           __FILE__, __LINE__, detail);
  }
}

std::vector<TaskSig> fingerprint_of(const rt::TaskSet& tasks) {
  std::vector<TaskSig> sig(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const rt::Task& t = tasks[i];
    sig[i] = TaskSig{t.exec,     t.copy_in,  t.copy_out,    t.period,
                     t.deadline, t.priority, t.arrival.get()};
  }
  return sig;
}

/// LS marking as a bitmask (first 64 tasks; used for telemetry and as the
/// sensitivity warm-seed key, never for correctness decisions).
std::uint64_t marking_mask(const rt::TaskSet& tasks) {
  std::uint64_t mask = 0;
  const std::size_t n = std::min<std::size_t>(tasks.size(), 64);
  for (std::size_t i = 0; i < n; ++i) {
    if (tasks[i].latency_sensitive) mask |= std::uint64_t{1} << i;
  }
  return mask;
}

/// Cache slots per task: the three formulation cases under LS semantics
/// plus the all-NLS (ignore_ls) case used by the WP baseline.
constexpr std::size_t kEntrySlots = 4;

std::size_t entry_slot(FormulationCase fcase, bool ignore_ls) {
  return ignore_ls ? 3 : static_cast<std::size_t>(fcase);
}

rt::TaskSet scaled(const rt::TaskSet& tasks, ScalingDimension dimension,
                   double factor) {
  rt::TaskSet result = tasks;
  for (std::size_t i = 0; i < result.size(); ++i) {
    auto scale = [factor](Time value) {
      return static_cast<Time>(
          std::ceil(static_cast<double>(value) * factor));
    };
    switch (dimension) {
      case ScalingDimension::kMemoryPhases:
        result[i].copy_in = scale(result[i].copy_in);
        result[i].copy_out = scale(result[i].copy_out);
        break;
      case ScalingDimension::kExecutionTimes:
        result[i].exec = std::max<Time>(1, scale(result[i].exec));
        break;
    }
  }
  return result;
}

}  // namespace

/// One cached delay-MILP formulation: the patchable model, its reusable
/// branch & bound session, and the incumbent carried between solves.
/// `session` references `milp.model`, so it is always reset before the
/// model is replaced (and member order guarantees it dies first).
struct FormulationEntry {
  bool valid = false;
  std::size_t num_intervals = 0;
  std::uint64_t ls_marking = 0;  ///< marking at the last build/patch
  DelayMilp milp;
  std::unique_ptr<lp::MilpSolver> session;
  std::vector<double> incumbent;  ///< last solve's values (may be empty)
};

struct TaskCacheEntry {
  std::array<FormulationEntry, kEntrySlots> slots;
  bool nps_valid = false;
  NpsTaskBound nps;
};

struct AnalysisEngine::Impl {
  explicit Impl(const EngineConfig& cfg) : config(cfg) {}

  EngineConfig config;
  std::vector<TaskSig> sig;
  std::vector<TaskCacheEntry> cache;

  // Parallel fan-out machinery, created on first use: one private serial
  // engine per pool worker, with the stable mapping task i -> worker
  // i % workers so each task's cache chain is identical for every thread
  // count (including 1, where the parent's own cache plays that role).
  std::unique_ptr<support::ThreadPool> pool;
  std::vector<std::unique_ptr<AnalysisEngine>> worker_engines;

  /// Sensitivity warm-seed store, active only inside max_scaling_factor.
  struct SensitivityState {
    double factor = 1.0;  ///< factor of the probe currently analyzed
    struct PerMarking {
      std::vector<double> factor;  ///< factor the stored WCRT comes from
      std::vector<Time> wcrt;      ///< kTimeMax = nothing stored
    };
    std::map<std::pair<bool, std::uint64_t>, PerMarking> store;
  };
  SensitivityState* sens = nullptr;

  std::size_t effective_workers() const {
    if (config.threads == 1) return 1;
    if (config.threads != 0) return config.threads;
    return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }

  void ensure_pool() {
    if (pool != nullptr) return;
    const std::size_t w = effective_workers();
    pool = std::make_unique<support::ThreadPool>(w);
    worker_engines.reserve(w);
    for (std::size_t i = 0; i < w; ++i) {
      worker_engines.push_back(
          std::make_unique<AnalysisEngine>(EngineConfig{/*threads=*/1}));
    }
    telemetry::count("analysis.engine.workers", w);
  }

  /// Drops every cached formulation / memo when the task-set parameters
  /// (LS flags excluded) changed since the last call.
  void sync_task_set(const rt::TaskSet& tasks) {
    std::vector<TaskSig> fresh = fingerprint_of(tasks);
    if (fresh == sig) return;
    sig = std::move(fresh);
    // clear() before resize(): entries must be destroyed, not moved — a
    // live MilpSolver session references its sibling model's address.
    cache.clear();
    cache.resize(sig.size());
  }

  DelayBound solve_delay(const rt::TaskSet& tasks, rt::TaskIndex i, Time t,
                         FormulationCase fcase,
                         const AnalysisOptions& options);
  TaskBoundResult bound(const rt::TaskSet& tasks, rt::TaskIndex i,
                        const AnalysisOptions& options, Time warm_start);
  std::vector<TaskBoundResult> bound_all(const rt::TaskSet& tasks,
                                         const AnalysisOptions& options);
  NpsTaskBound nps(const rt::TaskSet& tasks, rt::TaskIndex i);
  WpResult wp(const rt::TaskSet& tasks, const AnalysisOptions& options);
  WpResult marked(const rt::TaskSet& tasks, const AnalysisOptions& options);
  ProposedResult proposed(const rt::TaskSet& tasks,
                          const AnalysisOptions& options,
                          const WpResult* wp_round0);
  ApproachResult dispatch(const rt::TaskSet& tasks, Approach approach,
                          const AnalysisOptions& options);

  Time warm_seed(const rt::TaskSet& tasks, rt::TaskIndex i,
                 bool ignore_ls) const;
  void store_seed(const rt::TaskSet& tasks, rt::TaskIndex i, bool ignore_ls,
                  const TaskBoundResult& bound);
};

DelayBound AnalysisEngine::Impl::solve_delay(const rt::TaskSet& tasks,
                                             rt::TaskIndex i, Time t,
                                             FormulationCase fcase,
                                             const AnalysisOptions& options) {
  std::size_t intervals = 2;
  switch (fcase) {
    case FormulationCase::kNls:
      intervals = window_intervals_nls(tasks, i, t);
      break;
    case FormulationCase::kLsCaseA:
      intervals = window_intervals_ls(tasks, i, t);
      break;
    case FormulationCase::kLsCaseB:
      break;
  }

  FormulationEntry& e = cache[i].slots[entry_slot(fcase, options.ignore_ls)];
  const std::uint64_t marking = marking_mask(tasks);
  const bool hit = e.valid && e.num_intervals == intervals;
  if (hit) {
    // The window length (budget RHS) and — for patchable formulations —
    // the LS marking (admission bounds, cancellation RHS) are the only
    // moving parts; patch them in place.  The MilpSolver session then
    // syncs exactly the changed data into its retained tableaus.
    update_delay_milp(e.milp, tasks, i, t, options.ignore_ls);
    telemetry::count("analysis.milp_cache_hits");
    telemetry::count("analysis.engine.formulation_patches");
    if (e.milp.patchable_ls && e.ls_marking != marking) {
      telemetry::count("analysis.engine.ls_delta_patches");
    }
  } else {
    e.session.reset();  // references the model about to be replaced
    e.milp = build_delay_milp(tasks, i, t, fcase, options.ignore_ls,
                              /*patchable_ls=*/!options.ignore_ls);
    e.valid = true;
    e.num_intervals = intervals;
    e.incumbent.clear();
    telemetry::count("analysis.milp_builds");
  }
  e.ls_marking = marking;
  audit_formulation(e.milp, tasks, i, t, fcase, options.ignore_ls,
                    /*patched=*/hit);

  DelayBound out;
  // A request whose SolveBudget ran out degrades to the LP relaxation: the
  // relaxation's optimum is a valid dual bound on the MILP (>= the true
  // worst-case delay), so the derived response-time bound stays safe —
  // merely more pessimistic (analysis/budget.hpp).
  const bool budget_exceeded =
      options.budget != nullptr && options.budget->exceeded();
  if (options.lp_relaxation_only || budget_exceeded) {
    const lp::LpSolution sol = solve_lp(e.milp.model, options.milp.lp);
    out.lp_iterations = sol.iterations;
    if (sol.status == lp::SolveStatus::kOptimal) {
      out.valid = true;
      out.delay = sol.objective;
      out.relaxation = true;
      out.degraded = budget_exceeded;
      if (budget_exceeded) {
        telemetry::count("analysis.budget_degraded_solves");
      } else {
        telemetry::count("analysis.fallbacks.lp_relaxation_only");
      }
    }
    return out;
  }

  // Solve options are re-derived from the caller's options every time (an
  // engine outlives a single call, so they may change between solves);
  // only the incumbent carries over, and only across compatible patches of
  // the same model.  Branch the Constraint 13 max-selectors first (see
  // DelayMilp::alpha_vars).
  lp::MilpOptions milp_options = options.milp;
  milp_options.branch_priority.assign(e.milp.model.num_variables(), 0);
  for (const lp::VarId alpha : e.milp.alpha_vars) {
    milp_options.branch_priority[alpha.index] = 1;
  }
  if (hit) {
    milp_options.start_values = e.incumbent;
  }
  if (e.session == nullptr) {
    e.session = std::make_unique<lp::MilpSolver>(e.milp.model);
  }
  const lp::MilpResult res = e.session->solve(milp_options);
  audit_incumbent(e.milp.model, res, tasks, i, t);
  if (res.has_incumbent) {
    e.incumbent = res.values;
  }
  out.nodes = res.nodes;
  out.lp_iterations = res.lp_iterations;
  switch (res.status) {
    case lp::SolveStatus::kOptimal:
      out.valid = true;
      // best_bound equals the objective when optimality was proven and is
      // the safe dual bound when the search stopped at the relative gap.
      out.delay = res.best_bound;
      out.relaxation = res.gap_terminated;
      if (res.gap_terminated) {
        telemetry::count("analysis.fallbacks.gap_terminated");
      }
      break;
    case lp::SolveStatus::kNodeLimit:
      // Dual bound >= true maximum: safe.
      if (std::isfinite(res.best_bound)) {
        out.valid = true;
        out.delay = res.best_bound;
        out.relaxation = true;
        telemetry::count("analysis.fallbacks.node_limit");
      }
      break;
    case lp::SolveStatus::kInfeasible:
      // Only the empty schedule could be cut off; treat as zero delay.
      out.valid = true;
      out.delay = 0.0;
      break;
    default:
      break;  // unbounded / iteration limit: no safe bound
  }
  return out;
}

TaskBoundResult AnalysisEngine::Impl::bound(const rt::TaskSet& tasks,
                                            rt::TaskIndex i,
                                            const AnalysisOptions& options,
                                            Time warm_start) {
  MCS_REQUIRE(i < tasks.size(), "bound_response_time: bad task index");
  sync_task_set(tasks);
  const telemetry::ScopedTimer timer("analysis.bound_response_time");
  telemetry::count("analysis.tasks_analyzed");
  const rt::Task& task = tasks[i];
  const bool analyzed_ls = task.latency_sensitive && !options.ignore_ls;

  TaskBoundResult result;
  Time response = task.total_demand();  // R^(0) = l + C + u
  if (response > task.deadline) {
    result.wcrt = response;
    result.exceeded_deadline = true;
    return result;
  }
  if (warm_start > response && warm_start <= task.deadline) {
    // Fixpoint warm start (sensitivity sweeps): any R0 at or below the
    // least fixpoint converges to the same place — the iteration from
    // below stays below (Knaster-Tarski) — and even an over-seeded R0
    // would only land on a pre-fixpoint f(R) <= R, which is still a safe
    // WCRT bound.
    response = warm_start;
    telemetry::count("analysis.engine.warm_fixpoint_starts");
  }

  // Case (b) for LS tasks has a fixed two-interval window independent of
  // t; its formulation lives in the per-task cache like the others, so
  // across greedy rounds it is patched, not rebuilt.
  double case_b_delay = 0.0;
  if (analyzed_ls) {
    const DelayBound b =
        solve_delay(tasks, i, 0, FormulationCase::kLsCaseB, options);
    result.milp_nodes += b.nodes;
    result.lp_iterations += b.lp_iterations;
    if (!b.valid) {
      return result;  // no safe bound obtainable
    }
    result.used_relaxation_bound |= b.relaxation;
    result.degraded |= b.degraded;
    case_b_delay = b.delay;
  }

  // Fast accept: the MILP value is monotone in the window length, so if
  // the bound computed for the largest relevant window t_D = D - C - u
  // already fits the deadline, the least fixpoint fits too (and that value
  // is itself a safe WCRT bound).  One MILP instead of a full iteration in
  // the common (schedulable) case.
  if (options.fast_accept) {
    const Time t_deadline = task.deadline - task.exec - task.copy_out;
    const FormulationCase fcase = analyzed_ls ? FormulationCase::kLsCaseA
                                              : FormulationCase::kNls;
    const DelayBound d =
        solve_delay(tasks, i, t_deadline, fcase, options);
    result.milp_nodes += d.nodes;
    result.lp_iterations += d.lp_iterations;
    if (d.valid) {
      result.used_relaxation_bound |= d.relaxation;
      result.degraded |= d.degraded;
      const Time r_full = delay_to_ticks(std::max(d.delay, case_b_delay)) +
                          task.copy_out;
      if (r_full <= task.deadline) {
        result.wcrt = std::max(response, r_full);
        result.schedulable = true;
        return result;
      }
      // Inconclusive (f(D) > D does not imply a miss): fall through to the
      // iterative scheme.
    }
  }

  std::vector<std::uint64_t> prev_budgets;
  double prev_ls_releases = -1.0;
  for (std::size_t iter = 0; iter < options.max_outer_iterations; ++iter) {
    ++result.outer_iterations;
    telemetry::count("analysis.fixpoint_rounds");
    const Time t = response - task.exec - task.copy_out;
    MCS_ASSERT(t >= 0, "negative delay window");
    const FormulationCase fcase = analyzed_ls ? FormulationCase::kLsCaseA
                                              : FormulationCase::kNls;
    const std::size_t window = analyzed_ls
                                   ? window_intervals_ls(tasks, i, t)
                                   : window_intervals_nls(tasks, i, t);
    telemetry::record("analysis.window_intervals",
                      static_cast<double>(window));
    // The window length enters the MILP only through the interference
    // budgets (which also fix the interval count) and the cancellation
    // budget.  If none of them moved since the previous round the MILP is
    // *identical*, so its value is too: fixpoint reached.  (Comparing the
    // budgets rather than the interval count alone is exact: the count is
    // derived from the budget sum and can mask a changed cancellation
    // budget or clamp-equal windows with different budgets.)
    std::vector<std::uint64_t> budgets = interference_budgets(tasks, i, t);
    const double ls_releases =
        ls_release_budget(tasks, t, options.ignore_ls);
    if (iter > 0 && budgets == prev_budgets &&
        ls_releases == prev_ls_releases) {
      result.wcrt = response;
      result.schedulable = response <= task.deadline;
      return result;
    }
    prev_budgets = std::move(budgets);
    prev_ls_releases = ls_releases;

    const DelayBound a = solve_delay(tasks, i, t, fcase, options);
    result.milp_nodes += a.nodes;
    result.lp_iterations += a.lp_iterations;
    if (!a.valid) {
      return result;
    }
    result.used_relaxation_bound |= a.relaxation;
    result.degraded |= a.degraded;

    const double delay = std::max(a.delay, case_b_delay);
    const Time new_response =
        delay_to_ticks(delay) + task.copy_out;
    // The MILP value never shrinks as the window grows; keep monotone.
    const Time next = std::max(response, new_response);
    if (next > task.deadline) {
      result.wcrt = next;
      result.exceeded_deadline = true;
      return result;
    }
    if (next == response) {
      result.wcrt = response;
      result.schedulable = true;
      return result;
    }
    response = next;
  }
  // Iteration cap hit without convergence: no safe claim below deadline.
  result.wcrt = rt::kTimeMax;
  return result;
}

Time AnalysisEngine::Impl::warm_seed(const rt::TaskSet& tasks,
                                     rt::TaskIndex i, bool ignore_ls) const {
  if (sens == nullptr || tasks.size() > 64) return 0;
  const auto key = std::make_pair(ignore_ls, ignore_ls ? std::uint64_t{0}
                                                       : marking_mask(tasks));
  const auto it = sens->store.find(key);
  if (it == sens->store.end()) return 0;
  const auto& entry = it->second;
  if (i >= entry.wcrt.size() || entry.wcrt[i] == rt::kTimeMax) return 0;
  // Seeds are sound only from a factor at or below the probe's: the least
  // fixpoint is monotone in the scaled parameters.
  if (entry.factor[i] > sens->factor) return 0;
  return entry.wcrt[i];
}

void AnalysisEngine::Impl::store_seed(const rt::TaskSet& tasks,
                                      rt::TaskIndex i, bool ignore_ls,
                                      const TaskBoundResult& bound) {
  if (sens == nullptr || tasks.size() > 64 || !bound.schedulable) return;
  const auto key = std::make_pair(ignore_ls, ignore_ls ? std::uint64_t{0}
                                                       : marking_mask(tasks));
  auto& entry = sens->store[key];
  if (entry.wcrt.empty()) {
    entry.factor.assign(tasks.size(), 0.0);
    entry.wcrt.assign(tasks.size(), rt::kTimeMax);
  }
  if (entry.wcrt[i] == rt::kTimeMax || sens->factor >= entry.factor[i]) {
    entry.factor[i] = sens->factor;
    entry.wcrt[i] = bound.wcrt;
  }
}

std::vector<TaskBoundResult> AnalysisEngine::Impl::bound_all(
    const rt::TaskSet& tasks, const AnalysisOptions& options) {
  const std::size_t n = tasks.size();
  std::vector<Time> warm(n, 0);
  if (sens != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      warm[i] = warm_seed(tasks, i, options.ignore_ls);
    }
  }
  std::vector<TaskBoundResult> results(n);
  const std::size_t w = effective_workers();
  if (w <= 1 || n <= 1) {
    sync_task_set(tasks);
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = bound(tasks, i, options, warm[i]);
    }
  } else {
    ensure_pool();
    // Stripe c of parallel_for_chunked runs exactly the indices with
    // i % w == c, sequentially — so worker engine c is only ever touched
    // from one pool task at a time, and task i always lands on the same
    // engine no matter the thread count.
    support::parallel_for_chunked(
        *pool, n, w, [&](std::size_t i) {
          results[i] =
              worker_engines[i % w]->impl_->bound(tasks, i, options, warm[i]);
        });
  }
  if (sens != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      store_seed(tasks, i, options.ignore_ls, results[i]);
    }
  }
  return results;
}

NpsTaskBound AnalysisEngine::Impl::nps(const rt::TaskSet& tasks,
                                       rt::TaskIndex i) {
  MCS_REQUIRE(i < tasks.size(), "nps_bound: bad task index");
  sync_task_set(tasks);
  TaskCacheEntry& entry = cache[i];
  if (entry.nps_valid) {
    telemetry::count("analysis.engine.nps_memo_hits");
    return entry.nps;
  }
  // The NPS analysis is independent of the LS flags, so the memo survives
  // greedy marking rounds (the fingerprint excludes flags by design).
  entry.nps = analysis::nps_bound(tasks, i);
  entry.nps_valid = true;
  return entry.nps;
}

WpResult AnalysisEngine::Impl::wp(const rt::TaskSet& tasks,
                                  const AnalysisOptions& options) {
  AnalysisOptions wp_options = options;
  wp_options.ignore_ls = true;

  WpResult result;
  result.per_task = bound_all(tasks, wp_options);
  result.schedulable = true;
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const TaskBoundResult& bound = result.per_task[i];
    result.any_relaxation_fallback |= bound.used_relaxation_bound;
    result.degraded |= bound.degraded;
    result.total_milp_nodes += bound.milp_nodes;
    if (!bound.schedulable) {
      result.schedulable = false;
    }
  }
  return result;
}

WpResult AnalysisEngine::Impl::marked(const rt::TaskSet& tasks,
                                      const AnalysisOptions& options) {
  WpResult result;
  result.per_task = bound_all(tasks, options);
  result.schedulable = true;
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    const TaskBoundResult& bound = result.per_task[i];
    result.any_relaxation_fallback |= bound.used_relaxation_bound;
    result.degraded |= bound.degraded;
    result.total_milp_nodes += bound.milp_nodes;
    if (!bound.schedulable) {
      result.schedulable = false;
    }
  }
  return result;
}

ProposedResult AnalysisEngine::Impl::proposed(const rt::TaskSet& tasks,
                                              const AnalysisOptions& options,
                                              const WpResult* wp_round0) {
  MCS_REQUIRE(!options.ignore_ls,
              "analyze_proposed: ignore_ls belongs to the WP baseline");
  const std::size_t n = tasks.size();
  ProposedResult result;
  result.ls_flags.assign(n, false);

  rt::TaskSet working = tasks;
  for (rt::TaskIndex i = 0; i < working.size(); ++i) {
    working[i].latency_sensitive = false;  // paper: start all-NLS
  }
  const std::vector<rt::TaskIndex> order = working.by_priority();

  // Walks one round's bounds in priority order, accumulating fallback /
  // node statistics for exactly the prefix a sequential greedy pass would
  // have analyzed (up to and including the first failure) — engine rounds
  // compute every task's bound, but the reported accounting matches the
  // sequential algorithm and is thread-count independent.  Returns true
  // when every task passed; otherwise sets `failing` and blanks the
  // entries after it so the exposed per_task has the sequential shape.
  const auto digest_round = [&](std::vector<TaskBoundResult>& bounds,
                                rt::TaskIndex& failing) {
    bool all_ok = true;
    for (const rt::TaskIndex i : order) {
      const TaskBoundResult& b = bounds[i];
      result.any_relaxation_fallback |= b.used_relaxation_bound;
      result.degraded |= b.degraded;
      result.total_milp_nodes += b.milp_nodes;
      if (!b.schedulable) {
        all_ok = false;
        failing = i;
        break;
      }
    }
    if (!all_ok) {
      bool past = false;
      for (const rt::TaskIndex i : order) {
        if (past) bounds[i] = TaskBoundResult{};
        if (i == failing) past = true;
      }
    }
    return all_ok;
  };

  std::size_t round = 0;
  if (wp_round0 != nullptr) {
    MCS_REQUIRE(wp_round0->per_task.size() == n,
                "analyze_proposed: wp_round0 from a different task set");
    // Round 0 analyzes the all-NLS marking, whose formulation coincides
    // with the WP one (no LS task -> no LE/CL columns, zero cancellation
    // budget), so the caller's WP verdicts stand in for it verbatim.
    telemetry::count("analysis.engine.round0_injections");
    ++result.rounds;
    result.per_task = wp_round0->per_task;
    rt::TaskIndex failing = 0;
    if (digest_round(result.per_task, failing)) {
      result.schedulable = true;  // ls_flags stay all-false
      return result;
    }
    working[failing].latency_sensitive = true;
    round = 1;
  }

  // At most one promotion per round and at most n rounds.
  for (; round <= n; ++round) {
    ++result.rounds;
    result.per_task = bound_all(working, options);
    rt::TaskIndex failing = 0;
    if (digest_round(result.per_task, failing)) {
      result.schedulable = true;
      for (rt::TaskIndex i = 0; i < working.size(); ++i) {
        result.ls_flags[i] = working[i].latency_sensitive;
      }
      return result;
    }
    if (working[failing].latency_sensitive) {
      // Already LS and still missing: unschedulable (paper §VI).
      return result;
    }
    working[failing].latency_sensitive = true;
  }
  return result;  // defensive: cannot be reached (n+1 rounds, n promotions)
}

ApproachResult AnalysisEngine::Impl::dispatch(const rt::TaskSet& tasks,
                                              Approach approach,
                                              const AnalysisOptions& options) {
  ApproachResult result;
  result.wcrt.assign(tasks.size(), rt::kTimeMax);
  result.ls_flags.assign(tasks.size(), false);

  switch (approach) {
    case Approach::kProposed: {
      const ProposedResult r = proposed(tasks, options, nullptr);
      result.schedulable = r.schedulable;
      result.ls_flags = r.ls_flags;
      result.any_relaxation_fallback = r.any_relaxation_fallback;
      result.degraded = r.degraded;
      for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        result.wcrt[i] = r.per_task[i].wcrt;
      }
      break;
    }
    case Approach::kWasilyPellizzoni: {
      const WpResult r = wp(tasks, options);
      result.schedulable = r.schedulable;
      result.any_relaxation_fallback = r.any_relaxation_fallback;
      result.degraded = r.degraded;
      for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        result.wcrt[i] = r.per_task[i].wcrt;
      }
      break;
    }
    case Approach::kNonPreemptive: {
      result.schedulable = true;
      for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
        const NpsTaskBound bound = nps(tasks, i);
        result.wcrt[i] = bound.wcrt;
        result.schedulable = result.schedulable && bound.schedulable;
      }
      break;
    }
  }
  return result;
}

AnalysisEngine::AnalysisEngine(const EngineConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

AnalysisEngine::~AnalysisEngine() = default;

TaskBoundResult AnalysisEngine::bound_response_time(
    const rt::TaskSet& tasks, rt::TaskIndex i,
    const AnalysisOptions& options) {
  const Time warm = impl_->warm_seed(tasks, i, options.ignore_ls);
  const TaskBoundResult result = impl_->bound(tasks, i, options, warm);
  impl_->store_seed(tasks, i, options.ignore_ls, result);
  return result;
}

NpsTaskBound AnalysisEngine::nps_bound(const rt::TaskSet& tasks,
                                       rt::TaskIndex i) {
  return impl_->nps(tasks, i);
}

WpResult AnalysisEngine::analyze_wp(const rt::TaskSet& tasks,
                                    const AnalysisOptions& options) {
  return impl_->wp(tasks, options);
}

WpResult AnalysisEngine::analyze_marked(const rt::TaskSet& tasks,
                                        const AnalysisOptions& options) {
  return impl_->marked(tasks, options);
}

ProposedResult AnalysisEngine::analyze_proposed(const rt::TaskSet& tasks,
                                                const AnalysisOptions& options,
                                                const WpResult* wp_round0) {
  return impl_->proposed(tasks, options, wp_round0);
}

ApproachResult AnalysisEngine::analyze(const rt::TaskSet& tasks,
                                       Approach approach,
                                       const AnalysisOptions& options) {
  return impl_->dispatch(tasks, approach, options);
}

OpaResult AnalysisEngine::audsley_assign(const rt::TaskSet& tasks,
                                         Approach approach,
                                         const AnalysisOptions& options) {
  const auto test = [this, approach, &options](const rt::TaskSet& set,
                                               rt::TaskIndex i) {
    switch (approach) {
      case Approach::kNonPreemptive:
        return impl_->nps(set, i).schedulable;
      case Approach::kWasilyPellizzoni: {
        AnalysisOptions wp = options;
        wp.ignore_ls = true;
        return impl_->bound(set, i, wp, 0).schedulable;
      }
      case Approach::kProposed:
        return impl_->bound(set, i, options, 0).schedulable;
    }
    return false;
  };
  return analysis::audsley_assign(tasks, test);
}

SensitivityResult AnalysisEngine::max_scaling_factor(
    const rt::TaskSet& tasks, Approach approach, ScalingDimension dimension,
    const SensitivityOptions& options) {
  MCS_REQUIRE(options.tolerance > 0.0, "sensitivity: bad tolerance");
  MCS_REQUIRE(options.upper_limit >= 1.0, "sensitivity: bad upper limit");

  // Activate the warm-seed store for the duration of the search; every
  // probe records the WCRTs it proves schedulable (per LS marking) and
  // later probes of larger factors start their fixpoints there.
  Impl::SensitivityState state;
  impl_->sens = &state;
  struct SensScope {
    Impl& impl;
    ~SensScope() { impl.sens = nullptr; }
  } scope{*impl_};

  SensitivityResult result;
  const auto schedulable = [&](double factor) {
    ++result.analysis_runs;
    state.factor = factor;
    return impl_
        ->dispatch(scaled(tasks, dimension, factor), approach,
                   options.analysis)
        .schedulable;
  };

  if (!schedulable(1.0)) {
    result.min_failing_factor = 1.0;
    return result;
  }

  // Grow the bracket geometrically until failure (or the limit).
  double lo = 1.0;
  double hi = 2.0;
  while (hi <= options.upper_limit && schedulable(hi)) {
    lo = hi;
    hi *= 2.0;
  }
  if (hi > options.upper_limit) {
    // Never failed within the limit: report the limit as schedulable-up-to.
    result.max_factor = lo;
    result.min_failing_factor = hi;
    return result;
  }

  // Binary search on [lo, hi): lo schedulable, hi failing.
  while (hi - lo > options.tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (schedulable(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  result.max_factor = lo;
  result.min_failing_factor = hi;
  return result;
}

std::size_t AnalysisEngine::workers() const noexcept {
  return impl_->effective_workers();
}

}  // namespace mcs::analysis
