// Canonical configurations for the Figure 2 reproduction (DESIGN.md §4).
//
// The paper's figure captions (exact n / gamma / beta per inset) are not in
// the available text; these configurations are chosen to be consistent with
// every fact §VII does state: insets (a)-(d) sweep U, (e) sweeps gamma, (f)
// sweeps beta; gamma = 0.1 in (a)/(b); U = 0.8 and U = 0.6 are meaningful
// points of (a) and (c).  EXPERIMENTS.md records what was measured.
#pragma once

#include "exp/experiment.hpp"

namespace mcs::exp {

/// Returns the experiment configuration for Figure 2 inset 'a'..'f'.
/// Environment overrides (MCS_TASKSETS / MCS_SEED / MCS_THREADS) are
/// already applied.
ExperimentConfig figure2_config(char inset);

}  // namespace mcs::exp
