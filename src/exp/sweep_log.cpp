#include "exp/sweep_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace mcs::exp {

namespace {

constexpr const char* kSchema = "mcs-sweep-log-v1";

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void append_double(std::string& out, double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value,
                                       std::chars_format::general, 17);
  if (ec != std::errc{}) {
    throw std::runtime_error("sweep log: to_chars(double) failed");
  }
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

// ---------------------------------------------------------------------------
// Flat-object parser for exactly the JSON this file writes: an object whose
// values are strings, numbers, or arrays of strings/numbers.

struct Value {
  enum Kind { kString, kNumber, kArray } kind = kNumber;
  std::string text;                 ///< decoded string or raw number token
  std::vector<std::string> array;   ///< decoded/raw array elements
};

class FlatParser {
 public:
  explicit FlatParser(std::string_view line) : text_(line) {}

  std::map<std::string, Value> parse() {
    std::map<std::string, Value> object;
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return object;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      object[std::move(key)] = parse_value();
      skip_ws();
      const char c = next();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return object;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error(std::string("sweep log: malformed record (") +
                             what + ")");
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of line");
    return text_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    if (next() != c) fail("unexpected character");
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = next();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = next();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // Only ASCII control characters are ever written this way.
          if (code > 0x7f) fail("unsupported \\u escape");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  std::string parse_number_token() {
    std::string token;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' ||
          c == 'e' || c == 'E') {
        token.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    if (token.empty()) fail("expected number");
    return token;
  }

  Value parse_value() {
    Value value;
    const char c = peek();
    if (c == '"') {
      value.kind = Value::kString;
      value.text = parse_string();
    } else if (c == '[') {
      ++pos_;
      value.kind = Value::kArray;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      for (;;) {
        skip_ws();
        value.array.push_back(peek() == '"' ? parse_string()
                                            : parse_number_token());
        skip_ws();
        const char sep = next();
        if (sep == ']') break;
        if (sep != ',') fail("expected ',' or ']'");
      }
    } else {
      value.kind = Value::kNumber;
      value.text = parse_number_token();
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::uint64_t to_u64(const std::string& token, const char* field) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw std::runtime_error(std::string("sweep log: field '") + field +
                             "' is not an unsigned integer");
  }
  return out;
}

double to_double(const std::string& token, const char* field) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), out);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw std::runtime_error(std::string("sweep log: field '") + field +
                             "' is not a number");
  }
  return out;
}

const Value& require(const std::map<std::string, Value>& object,
                     const char* key) {
  const auto it = object.find(key);
  if (it == object.end()) {
    throw std::runtime_error(std::string("sweep log: missing field '") +
                             key + "'");
  }
  return it->second;
}

SweepLogHeader parse_header(const std::map<std::string, Value>& object) {
  SweepLogHeader header;
  header.name = require(object, "name").text;
  header.axis = require(object, "axis").text;
  header.seed = to_u64(require(object, "seed").text, "seed");
  header.points =
      static_cast<std::size_t>(to_u64(require(object, "points").text,
                                      "points"));
  header.slots = static_cast<std::size_t>(
      to_u64(require(object, "slots").text, "slots"));
  header.values_hash =
      to_u64(require(object, "values_hash").text, "values_hash");
  header.shard_index = static_cast<std::size_t>(
      to_u64(require(object, "shard").text, "shard"));
  header.shard_count = static_cast<std::size_t>(
      to_u64(require(object, "shards").text, "shards"));
  header.metrics = require(object, "metrics").array;
  return header;
}

UnitOutcome parse_unit(const std::map<std::string, Value>& object) {
  UnitOutcome unit;
  unit.point = static_cast<std::size_t>(
      to_u64(require(object, "point").text, "point"));
  unit.slot =
      static_cast<std::size_t>(to_u64(require(object, "slot").text, "slot"));
  const std::string& status = require(object, "status").text;
  if (status == "ok") {
    unit.ok = true;
    const Value& metrics = require(object, "metrics");
    unit.metrics.reserve(metrics.array.size());
    for (const std::string& token : metrics.array) {
      unit.metrics.push_back(to_u64(token, "metrics"));
    }
  } else if (status == "error") {
    unit.ok = false;
    unit.error = require(object, "error").text;
  } else {
    throw std::runtime_error("sweep log: unknown status '" + status + "'");
  }
  unit.attempts = static_cast<std::uint32_t>(
      to_u64(require(object, "attempts").text, "attempts"));
  unit.seconds = to_double(require(object, "seconds").text, "seconds");
  return unit;
}

}  // namespace

bool SweepLogHeader::same_sweep(const SweepLogHeader& other) const {
  return name == other.name && axis == other.axis && seed == other.seed &&
         points == other.points && slots == other.slots &&
         values_hash == other.values_hash && metrics == other.metrics;
}

SweepLogContents read_sweep_log(const std::filesystem::path& path) {
  SweepLogContents contents;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return contents;  // missing log = nothing completed yet
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    const bool is_final = nl == std::string::npos;
    const std::string_view line(text.data() + start,
                                (is_final ? text.size() : nl) - start);
    start = is_final ? text.size() : nl + 1;
    if (line.empty()) continue;

    std::map<std::string, Value> object;
    try {
      object = FlatParser(line).parse();
      if (object.count("schema") != 0) {
        if (require(object, "schema").text != kSchema) {
          throw std::runtime_error("sweep log: unexpected schema '" +
                                   require(object, "schema").text + "'");
        }
        SweepLogHeader header = parse_header(object);
        if (!contents.header.has_value()) {
          contents.header = std::move(header);
        } else if (!contents.header->same_sweep(header)) {
          throw std::runtime_error(
              "sweep log: header mismatch inside " + path.string() +
              " (concatenated logs from different sweeps?)");
        }
      } else {
        contents.units.push_back(parse_unit(object));
      }
    } catch (const std::exception&) {
      // Each record is written newline-terminated in one write(), so a
      // partial (killed-mid-write) line is exactly a final line with no
      // trailing newline.  Anything else malformed is real corruption.
      if (is_final) {
        contents.truncated_tail = true;
        break;
      }
      throw;
    }
  }
  return contents;
}

SweepLogAppender::SweepLogAppender(const std::filesystem::path& path,
                                   bool truncate)
    : path_(path) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    throw std::runtime_error("sweep log: cannot open " + path.string() +
                             ": " + std::strerror(errno));
  }
}

SweepLogAppender::~SweepLogAppender() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void SweepLogAppender::write_line(const std::string& line) {
  // One write() per line: O_APPEND makes concurrent appends land whole.
  // Retried on EINTR / short writes (a kill mid-retry leaves a partial
  // trailing line, which the reader drops).
  static std::mutex mutex;
  const std::lock_guard<std::mutex> lock(mutex);
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(fd_, line.data() + written, line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("sweep log: write failed for " +
                               path_.string() + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

void SweepLogAppender::append_header(const SweepLogHeader& header) {
  std::string line = "{\"schema\":\"";
  line += kSchema;
  line += "\",\"name\":\"" + json_escape(header.name) + "\"";
  line += ",\"axis\":\"" + json_escape(header.axis) + "\"";
  line += ",\"seed\":" + std::to_string(header.seed);
  line += ",\"points\":" + std::to_string(header.points);
  line += ",\"slots\":" + std::to_string(header.slots);
  line += ",\"values_hash\":" + std::to_string(header.values_hash);
  line += ",\"shard\":" + std::to_string(header.shard_index);
  line += ",\"shards\":" + std::to_string(header.shard_count);
  line += ",\"metrics\":[";
  for (std::size_t i = 0; i < header.metrics.size(); ++i) {
    if (i != 0) line += ",";
    line += "\"" + json_escape(header.metrics[i]) + "\"";
  }
  line += "]}\n";
  write_line(line);
}

void SweepLogAppender::append(const UnitOutcome& outcome) {
  std::string line = "{\"point\":" + std::to_string(outcome.point);
  line += ",\"slot\":" + std::to_string(outcome.slot);
  line += ",\"status\":\"";
  line += outcome.ok ? "ok" : "error";
  line += "\",\"attempts\":" + std::to_string(outcome.attempts);
  line += ",\"seconds\":";
  append_double(line, outcome.seconds);
  if (outcome.ok) {
    line += ",\"metrics\":[";
    for (std::size_t i = 0; i < outcome.metrics.size(); ++i) {
      if (i != 0) line += ",";
      line += std::to_string(outcome.metrics[i]);
    }
    line += "]";
  } else {
    line += ",\"error\":\"" + json_escape(outcome.error) + "\"";
  }
  line += "}\n";
  write_line(line);
}

}  // namespace mcs::exp
