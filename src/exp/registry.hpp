// Central sweep-spec registry: every sweep the bench layer can run, keyed
// by name.  The mcs_bench multi-tool binary resolves its first argument
// here; merge/resume use the registry to rebuild the spec a JSONL log was
// written against (the log header's fingerprint is then verified against
// the rebuilt spec, so a stale or edited registry is caught, not silently
// aggregated).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "exp/sweep_runner.hpp"

namespace mcs::exp {

struct SweepEntry {
  std::string name;         ///< CLI name and log/CSV file stem
  std::string description;  ///< one-liner for `mcs_bench list`
  /// Builds the spec.  Called at run/merge time so MCS_TASKSETS / MCS_SEED
  /// environment overrides apply.
  SweepSpec (*make)() = nullptr;
};

/// All registered sweeps: fig2a..fig2f plus the LS-marking and
/// priority-assignment ablations.
const std::vector<SweepEntry>& sweep_registry();

/// Registry lookup; nullptr when `name` is not a registered sweep.
const SweepEntry* find_sweep(std::string_view name);

}  // namespace mcs::exp
