// Deterministic, resumable work-queue engine for parameter sweeps.
//
// Every experiment/bench sweep in the repo has the same shape: an x axis of
// sweep values, `slots_per_point` independent random instances per value,
// and a handful of integer metric counts per instance (schedulable under
// approach A, fell back to a dual bound, ...).  The runner flattens all
// (point, slot) pairs into ONE global queue on support::ThreadPool — no
// per-point barrier, so threads finishing a cheap point immediately steal
// units from expensive ones.
//
// Determinism contract: the RNG of unit (point, slot) is seeded purely by
// derive_seed(spec.seed, point, slot), and every aggregate (CSV row) is an
// order-independent sum of integer unit metrics.  The emitted CSV is
// therefore byte-identical across thread counts, shard layouts, and
// kill/--resume boundaries — enforced by tests/test_exp_sweep_runner.cpp.
//
// Crash safety: each finished unit is appended to a JSONL log
// (sweep_log.hpp) with one O_APPEND write; --resume reads the log back,
// verifies the sweep fingerprint, and skips completed units.  A unit whose
// evaluate() throws is retried up to `max_attempts` times and then recorded
// as an `error` record — the sweep completes, the row just aggregates one
// fewer instance.
//
// Sharding: `--shard=k/N` runs units with index % N == k; `merge_sweep_logs`
// combines the shard logs back into one complete outcome set for the final
// CSV and telemetry snapshot.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include "exp/sweep_log.hpp"
#include "support/rng.hpp"

namespace mcs::exp {

/// One output column of a sweep.
struct MetricSpec {
  std::string column;  ///< CSV column name
  /// kRatio columns print metric_sum / ok_units (a schedulability ratio);
  /// kCount columns print the raw sum.
  enum Kind { kRatio, kCount } kind = kCount;
};

/// Identity of one work unit, handed to SweepSpec::evaluate.
struct SweepUnit {
  std::size_t index = 0;  ///< global index = point * slots_per_point + slot
  std::size_t point = 0;  ///< index into SweepSpec::values
  std::size_t slot = 0;   ///< instance index within the point
  double x = 0.0;         ///< values[point]
};

/// A complete sweep description: axis, per-unit work, metric layout.
struct SweepSpec {
  std::string name;   ///< e.g. "fig2a" (log/CSV file stem)
  std::string title;  ///< human-readable description
  std::string axis;   ///< x-axis CSV column, e.g. "U"
  std::vector<double> values;
  std::size_t slots_per_point = 40;
  std::uint64_t seed = 1;
  std::vector<MetricSpec> metrics;
  /// Evaluates one unit.  Receives an Rng seeded purely from
  /// (spec.seed, point, slot); must return one count per metrics entry.
  /// May throw — the runner retries, then records an error outcome.
  std::function<std::vector<std::uint64_t>(const SweepUnit&, support::Rng&)>
      evaluate;
};

/// Execution knobs, orthogonal to the sweep description.
struct RunnerOptions {
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// This process runs units with index % shard_count == shard_index.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// JSONL result log (empty = keep results in memory only).
  std::filesystem::path log_path;
  /// Skip units already recorded in log_path instead of truncating it.
  bool resume = false;
  /// Attempts per unit before recording an error outcome (>= 1).
  std::uint32_t max_attempts = 2;
  /// Legacy execution mode: wait for every unit of point p before starting
  /// point p+1.  Exists for the barrier-vs-queue bench comparison; output
  /// is byte-identical either way.
  bool barrier_per_point = false;
  /// Test hook emulating a crash: stop evaluating after this many units
  /// (0 = no limit).  Remaining units get no record, as after a SIGKILL.
  std::size_t unit_limit = 0;
  /// Invoked after each finished unit with (done, total) for this process'
  /// shard; called under a lock, so it may write to a stream directly.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// What one run_sweep call did.
struct SweepRunResult {
  SweepLogHeader header;
  /// Outcomes for every unit of this shard, sorted by global index —
  /// includes units skipped via --resume (their logged outcomes).
  std::vector<UnitOutcome> outcomes;
  std::size_t resume_skips = 0;
  std::size_t retries = 0;  ///< failed attempts that were retried
  std::size_t errors = 0;   ///< units that exhausted their attempts
  std::size_t steals = 0;   ///< units run while an earlier point was open
  double total_seconds = 0.0;  ///< wall time of this call
};

/// One aggregated CSV row.
struct SweepRow {
  double x = 0.0;
  std::size_t ok_units = 0;  ///< successfully evaluated instances
  std::size_t errors = 0;    ///< instances that ended in an error record
  std::vector<std::uint64_t> metric_sums;  ///< aligned with spec.metrics
  double seconds = 0.0;  ///< sum of unit wall times (not in the CSV)
};

/// Order-independent fingerprint of the sweep's x values (chained
/// derive_seed over their bit patterns); stored in the log header so
/// --resume and merge refuse logs from a different sweep.
std::uint64_t sweep_values_hash(const SweepSpec& spec);

/// The header run_sweep would write for this spec and shard layout.
SweepLogHeader make_log_header(const SweepSpec& spec, std::size_t shard_index,
                               std::size_t shard_count);

/// Runs (this shard of) the sweep.  Throws on configuration errors and on a
/// resume log that belongs to a different sweep; unit failures do NOT throw
/// (they become error outcomes).
SweepRunResult run_sweep(const SweepSpec& spec, const RunnerOptions& options);

/// Sums unit outcomes into one row per sweep point.  Order-independent;
/// outcomes may cover any subset of units (e.g. one shard).
std::vector<SweepRow> aggregate_outcomes(
    const SweepSpec& spec, const std::vector<UnitOutcome>& outcomes);

/// Writes the deterministic sweep CSV (atomic temp + rename): axis column,
/// one column per metric (ratio or count), then ok-unit and error counts.
/// No wall-time columns — those live in the JSONL log and telemetry.
void write_sweep_csv(const SweepSpec& spec, const std::vector<SweepRow>& rows,
                     const std::filesystem::path& path);

/// Reads shard logs, verifies every one fingerprints `spec`, de-duplicates
/// (an `ok` record wins over an `error` record for the same unit), and
/// returns the complete outcome set sorted by global index.  Throws when a
/// log belongs to a different sweep or when any unit has no record at all.
std::vector<UnitOutcome> merge_sweep_logs(
    const SweepSpec& spec, const std::vector<std::filesystem::path>& logs);

}  // namespace mcs::exp
