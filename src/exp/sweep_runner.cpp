#include "exp/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "support/contracts.hpp"
#include "support/csv.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace mcs::exp {

namespace {

void validate_spec(const SweepSpec& spec) {
  MCS_REQUIRE(!spec.name.empty(), "sweep without a name");
  MCS_REQUIRE(!spec.values.empty(), "sweep without sweep points");
  MCS_REQUIRE(spec.slots_per_point > 0, "sweep without slots per point");
  MCS_REQUIRE(!spec.metrics.empty(), "sweep without metrics");
  MCS_REQUIRE(spec.evaluate != nullptr, "sweep without an evaluate function");
}

void validate_outcome_shape(const SweepSpec& spec, const UnitOutcome& unit,
                            const char* source) {
  if (unit.point >= spec.values.size() ||
      unit.slot >= spec.slots_per_point) {
    throw std::runtime_error(std::string("sweep ") + source +
                             ": unit (point, slot) out of range");
  }
  if (unit.ok && unit.metrics.size() != spec.metrics.size()) {
    throw std::runtime_error(std::string("sweep ") + source +
                             ": unit metric count does not match the spec");
  }
}

std::size_t unit_index(const SweepSpec& spec, const UnitOutcome& unit) {
  return unit.point * spec.slots_per_point + unit.slot;
}

/// De-duplicates outcomes by unit: an ok record beats an error record
/// (a later resume attempt may have succeeded); ties keep the first seen.
std::map<std::size_t, UnitOutcome> dedupe(
    const SweepSpec& spec, const std::vector<UnitOutcome>& units,
    const char* source) {
  std::map<std::size_t, UnitOutcome> by_index;
  for (const UnitOutcome& unit : units) {
    validate_outcome_shape(spec, unit, source);
    const std::size_t index = unit_index(spec, unit);
    const auto it = by_index.find(index);
    if (it == by_index.end()) {
      by_index.emplace(index, unit);
    } else if (unit.ok && !it->second.ok) {
      it->second = unit;
    }
  }
  return by_index;
}

}  // namespace

std::uint64_t sweep_values_hash(const SweepSpec& spec) {
  // Chained tuple hash: position-sensitive, so reordering or truncating
  // the value list changes the fingerprint.
  std::uint64_t hash = support::derive_seed(0x6d63732d, spec.values.size(),
                                            spec.slots_per_point);
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    hash = support::derive_seed(hash, i,
                                std::bit_cast<std::uint64_t>(spec.values[i]));
  }
  return hash;
}

SweepLogHeader make_log_header(const SweepSpec& spec, std::size_t shard_index,
                               std::size_t shard_count) {
  SweepLogHeader header;
  header.name = spec.name;
  header.axis = spec.axis;
  header.seed = spec.seed;
  header.points = spec.values.size();
  header.slots = spec.slots_per_point;
  header.values_hash = sweep_values_hash(spec);
  header.shard_index = shard_index;
  header.shard_count = shard_count;
  header.metrics.reserve(spec.metrics.size());
  for (const MetricSpec& metric : spec.metrics) {
    header.metrics.push_back(metric.column);
  }
  return header;
}

SweepRunResult run_sweep(const SweepSpec& spec, const RunnerOptions& options) {
  validate_spec(spec);
  MCS_REQUIRE(options.shard_count >= 1, "shard count must be >= 1");
  MCS_REQUIRE(options.shard_index < options.shard_count,
              "shard index out of range");
  MCS_REQUIRE(options.max_attempts >= 1, "max_attempts must be >= 1");
  MCS_REQUIRE(options.resume == false || !options.log_path.empty(),
              "--resume requires a result log path");

  const auto t_start = std::chrono::steady_clock::now();
  const support::telemetry::ScopedTimer timer("exp.sweep.run");

  SweepRunResult result;
  result.header = make_log_header(spec, options.shard_index,
                                  options.shard_count);

  const std::size_t points = spec.values.size();
  const std::size_t total_units = points * spec.slots_per_point;

  // --- resume: load completed units from the existing log -----------------
  std::map<std::size_t, UnitOutcome> completed;
  bool log_has_valid_header = false;
  if (options.resume) {
    const SweepLogContents contents = read_sweep_log(options.log_path);
    if (contents.header.has_value()) {
      if (!contents.header->same_sweep(result.header) ||
          contents.header->shard_index != options.shard_index ||
          contents.header->shard_count != options.shard_count) {
        throw std::runtime_error(
            "sweep resume: " + options.log_path.string() +
            " was written by a different sweep or shard layout; refusing "
            "to resume (delete the log to start over)");
      }
      log_has_valid_header = true;
      completed = dedupe(spec, contents.units, "resume");
      for (const auto& [index, unit] : completed) {
        if (index % options.shard_count != options.shard_index) {
          throw std::runtime_error(
              "sweep resume: " + options.log_path.string() +
              " contains units outside this shard");
        }
        (void)unit;
      }
    }
    // No/invalid header (e.g. the run died before the header write hit the
    // disk): nothing to resume, fall through to a fresh log.
  }

  // --- result log ---------------------------------------------------------
  std::unique_ptr<SweepLogAppender> log;
  if (!options.log_path.empty()) {
    log = std::make_unique<SweepLogAppender>(options.log_path,
                                             /*truncate=*/!log_has_valid_header);
    if (!log_has_valid_header) {
      log->append_header(result.header);
    }
  }

  // --- work list for this shard -------------------------------------------
  std::vector<SweepUnit> units;
  units.reserve(total_units / options.shard_count + 1);
  for (std::size_t index = 0; index < total_units; ++index) {
    if (index % options.shard_count != options.shard_index) continue;
    if (completed.count(index) != 0) continue;
    SweepUnit unit;
    unit.index = index;
    unit.point = index / spec.slots_per_point;
    unit.slot = index % spec.slots_per_point;
    unit.x = spec.values[unit.point];
    units.push_back(unit);
  }
  result.resume_skips = completed.size();
  support::telemetry::count("exp.sweep.resume_skips", result.resume_skips);

  const std::size_t shard_total = units.size() + completed.size();

  // Pending units per point, for cross-point-overlap (steal) detection.
  std::vector<std::atomic<std::size_t>> open_per_point(points);
  for (const SweepUnit& unit : units) {
    open_per_point[unit.point].fetch_add(1, std::memory_order_relaxed);
  }

  std::mutex mutex;  // guards outcomes / counters / progress below
  std::vector<UnitOutcome> outcomes;
  outcomes.reserve(units.size());
  std::size_t done = completed.size();
  std::atomic<std::size_t> started{0};

  const auto run_unit = [&](const SweepUnit& unit) {
    if (options.unit_limit != 0 &&
        started.fetch_add(1, std::memory_order_relaxed) >=
            options.unit_limit) {
      return;  // emulated crash: unit gets no record
    }

    // A unit is a "steal" when some earlier point still has open units —
    // exactly the overlap a per-point barrier forbids.
    bool stole = false;
    for (std::size_t q = 0; q < unit.point && !stole; ++q) {
      stole = open_per_point[q].load(std::memory_order_relaxed) != 0;
    }

    UnitOutcome outcome;
    outcome.point = unit.point;
    outcome.slot = unit.slot;
    const auto u_start = std::chrono::steady_clock::now();
    for (std::uint32_t attempt = 1; attempt <= options.max_attempts;
         ++attempt) {
      outcome.attempts = attempt;
      try {
        // A fresh RNG per attempt: the unit's stream depends only on
        // (seed, point, slot), never on retry history.
        support::Rng rng(
            support::derive_seed(spec.seed, unit.point, unit.slot));
        outcome.metrics = spec.evaluate(unit, rng);
        MCS_REQUIRE(outcome.metrics.size() == spec.metrics.size(),
                    "evaluate returned a wrong-size metric vector");
        outcome.ok = true;
        outcome.error.clear();
        break;
      } catch (const std::exception& e) {
        outcome.ok = false;
        outcome.metrics.clear();
        outcome.error = e.what();
      } catch (...) {
        outcome.ok = false;
        outcome.metrics.clear();
        outcome.error = "unknown exception";
      }
    }
    outcome.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - u_start)
                          .count();
    open_per_point[unit.point].fetch_sub(1, std::memory_order_relaxed);

    if (log) {
      log->append(outcome);
    }
    support::telemetry::count("exp.sweep.units_done");
    support::telemetry::record("exp.sweep.unit_seconds", outcome.seconds);
    if (stole) support::telemetry::count("exp.sweep.steals");
    if (!outcome.ok) support::telemetry::count("exp.sweep.errors");
    if (outcome.attempts > 1) {
      support::telemetry::count("exp.sweep.retries", outcome.attempts - 1);
    }

    const std::lock_guard<std::mutex> lock(mutex);
    if (stole) ++result.steals;
    if (!outcome.ok) ++result.errors;
    // Failed attempts that led to a retry: all but the last attempt.
    result.retries += outcome.attempts - 1;
    outcomes.push_back(std::move(outcome));
    ++done;
    if (options.progress) {
      options.progress(done, shard_total);
    }
  };

  support::ThreadPool pool(options.threads);
  if (options.barrier_per_point) {
    // Legacy execution shape: drain every unit of a point before the next
    // point starts.  Same outcomes, worse tail utilization.
    std::size_t cursor = 0;
    for (std::size_t p = 0; p < points; ++p) {
      while (cursor < units.size() && units[cursor].point == p) {
        const SweepUnit unit = units[cursor++];
        pool.submit([&run_unit, unit] { run_unit(unit); });
      }
      pool.wait_idle();
    }
  } else {
    for (const SweepUnit& unit : units) {
      pool.submit([&run_unit, unit] { run_unit(unit); });
    }
    pool.wait_idle();
  }

  // Resumed outcomes join the fresh ones so callers see the whole shard.
  for (auto& [index, unit] : completed) {
    (void)index;
    outcomes.push_back(std::move(unit));
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [&spec](const UnitOutcome& a, const UnitOutcome& b) {
              return unit_index(spec, a) < unit_index(spec, b);
            });
  result.outcomes = std::move(outcomes);
  result.total_seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t_start)
                             .count();
  return result;
}

std::vector<SweepRow> aggregate_outcomes(
    const SweepSpec& spec, const std::vector<UnitOutcome>& outcomes) {
  validate_spec(spec);
  std::vector<SweepRow> rows(spec.values.size());
  for (std::size_t p = 0; p < spec.values.size(); ++p) {
    rows[p].x = spec.values[p];
    rows[p].metric_sums.assign(spec.metrics.size(), 0);
  }
  for (const UnitOutcome& unit : outcomes) {
    validate_outcome_shape(spec, unit, "aggregate");
    SweepRow& row = rows[unit.point];
    row.seconds += unit.seconds;
    if (!unit.ok) {
      ++row.errors;
      continue;
    }
    ++row.ok_units;
    for (std::size_t m = 0; m < unit.metrics.size(); ++m) {
      row.metric_sums[m] += unit.metrics[m];
    }
  }
  return rows;
}

void write_sweep_csv(const SweepSpec& spec, const std::vector<SweepRow>& rows,
                     const std::filesystem::path& path) {
  MCS_REQUIRE(rows.size() == spec.values.size(),
              "row count does not match the sweep");
  support::CsvWriter csv(path);
  std::vector<std::string> header;
  header.reserve(spec.metrics.size() + 3);
  header.push_back(spec.axis);
  for (const MetricSpec& metric : spec.metrics) {
    header.push_back(metric.column);
  }
  header.push_back("tasksets");
  header.push_back("errors");
  csv.write_row(header);
  for (const SweepRow& row : rows) {
    csv.cell(row.x);
    for (std::size_t m = 0; m < spec.metrics.size(); ++m) {
      if (spec.metrics[m].kind == MetricSpec::kRatio) {
        const double ratio =
            row.ok_units == 0
                ? 0.0
                : static_cast<double>(row.metric_sums[m]) /
                      static_cast<double>(row.ok_units);
        csv.cell(ratio);
      } else {
        csv.cell(static_cast<std::size_t>(row.metric_sums[m]));
      }
    }
    csv.cell(row.ok_units);
    csv.cell(row.errors);
    csv.end_row();
  }
  csv.close();
}

std::vector<UnitOutcome> merge_sweep_logs(
    const SweepSpec& spec, const std::vector<std::filesystem::path>& logs) {
  validate_spec(spec);
  MCS_REQUIRE(!logs.empty(), "merge without shard logs");
  const SweepLogHeader base = make_log_header(spec, 0, 1);

  std::vector<UnitOutcome> all;
  for (const std::filesystem::path& path : logs) {
    const SweepLogContents contents = read_sweep_log(path);
    if (!contents.header.has_value()) {
      throw std::runtime_error("sweep merge: " + path.string() +
                               " has no header (empty or truncated log)");
    }
    if (!contents.header->same_sweep(base)) {
      throw std::runtime_error("sweep merge: " + path.string() +
                               " belongs to a different sweep than '" +
                               spec.name + "'");
    }
    all.insert(all.end(), contents.units.begin(), contents.units.end());
  }

  std::map<std::size_t, UnitOutcome> by_index = dedupe(spec, all, "merge");
  const std::size_t total_units = spec.values.size() * spec.slots_per_point;
  if (by_index.size() != total_units) {
    std::size_t first_missing = total_units;
    for (std::size_t index = 0; index < total_units; ++index) {
      if (by_index.count(index) == 0) {
        first_missing = index;
        break;
      }
    }
    throw std::runtime_error(
        "sweep merge: incomplete — " +
        std::to_string(total_units - by_index.size()) + " of " +
        std::to_string(total_units) + " units have no record (first missing "
        "global index " + std::to_string(first_missing) +
        "); run the missing shards or --resume the killed one");
  }

  std::vector<UnitOutcome> merged;
  merged.reserve(total_units);
  for (auto& [index, unit] : by_index) {
    (void)index;
    merged.push_back(std::move(unit));
  }
  return merged;
}

}  // namespace mcs::exp
