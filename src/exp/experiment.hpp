// Experiment harness for the paper's evaluation (§VII, Figure 2).
//
// An experiment sweeps one generation parameter (task-set utilization U,
// memory-intensity gamma, or deadline-tightness beta) over a range of
// values; at each sweep point it generates many random task sets and
// measures the fraction deemed schedulable by each of the three approaches
// (proposed / WP2016 [3] / NPS).
//
// Execution is delegated to exp::run_sweep (sweep_runner.hpp): every
// (point, task-set slot) pair is one unit in a global work queue, seeded
// purely by derive_seed(seed, point, slot), so the CSV output is
// byte-identical for a fixed seed regardless of thread count, shard
// layout, or kill/--resume boundaries.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/schedulability.hpp"
#include "exp/sweep_runner.hpp"
#include "gen/generator.hpp"

namespace mcs::exp {

enum class SweepParam { kUtilization, kGamma, kBeta, kNumTasks };

const char* to_string(SweepParam param) noexcept;

struct ExperimentConfig {
  std::string name;   ///< e.g. "fig2a" (used for the CSV file name)
  std::string title;  ///< human-readable description
  gen::GeneratorConfig base;  ///< fixed generation parameters
  SweepParam sweep = SweepParam::kUtilization;
  std::vector<double> values;  ///< sweep points (x axis)
  std::size_t tasksets_per_point = 40;
  std::uint64_t seed = 1;
  analysis::AnalysisOptions analysis;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

struct SweepPoint {
  double x = 0.0;
  /// Task sets successfully analyzed (excludes `errors`).
  std::size_t tasksets = 0;
  /// Units whose analysis threw even after the runner's retry budget.
  std::size_t errors = 0;
  /// Schedulable counts indexed by analysis::Approach.
  std::size_t schedulable_proposed = 0;
  std::size_t schedulable_wp = 0;
  std::size_t schedulable_nps = 0;
  /// Task sets where *any* MILP (WP or Proposed analysis) fell back to its
  /// dual bound.  Counted at most once per task set, so always <= tasksets.
  std::size_t relaxation_fallbacks = 0;
  /// Per-analysis fallback splits (a task set can appear in both).
  std::size_t fallbacks_wp = 0;
  std::size_t fallbacks_proposed = 0;
  /// Sum of per-unit analysis wall times for this point (table only — the
  /// CSV is timing-free so its bytes stay deterministic).
  double seconds = 0.0;
  /// Per-task-set analysis latency percentiles within this point (seconds;
  /// all three approaches per task set).
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;

  double ratio(analysis::Approach approach) const;
};

struct ExperimentResult {
  ExperimentConfig config;
  std::vector<SweepPoint> points;
  double total_seconds = 0.0;
};

/// The SweepSpec equivalent of `config`: metric columns proposed / wp2016 /
/// nps (ratios) and relaxation_fallbacks / fallbacks_wp / fallbacks_proposed
/// (counts); evaluate() runs the three-approach analysis pipeline on one
/// generated task set.
SweepSpec experiment_sweep_spec(const ExperimentConfig& config);

/// Folds unit outcomes (from run_sweep or merge_sweep_logs) into per-point
/// results, including the latency percentiles for the printed table.
std::vector<SweepPoint> points_from_outcomes(
    const ExperimentConfig& config, const std::vector<UnitOutcome>& outcomes);

/// Runs the experiment on the global work queue (threads from
/// config.threads; no result log).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Runs the experiment with full runner control (sharding, JSONL log,
/// resume...).  `options` is taken as-is — config.threads is NOT consulted.
ExperimentResult run_experiment(const ExperimentConfig& config,
                                const RunnerOptions& options);

/// Prints the result as an aligned table (one row per sweep point with the
/// three schedulability ratios), the format the figures plot.
void print_result(const ExperimentResult& result, std::ostream& out);

/// Writes `<config.name>.csv` into `directory` (atomic temp + rename).
/// Same bytes as write_sweep_csv over the equivalent rows — timing-free.
void write_csv(const ExperimentResult& result,
               const std::filesystem::path& directory);

/// Applies MCS_TASKSETS / MCS_SEED / MCS_THREADS environment overrides —
/// lets users scale benches up or down without recompiling.
void apply_env_overrides(ExperimentConfig& config);

/// MCS_TASKSETS / MCS_SEED overrides for registry sweeps that are not
/// ExperimentConfig-based (thread count lives in RunnerOptions there).
void apply_env_overrides(SweepSpec& spec);

}  // namespace mcs::exp
