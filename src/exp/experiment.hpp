// Experiment harness for the paper's evaluation (§VII, Figure 2).
//
// An experiment sweeps one generation parameter (task-set utilization U,
// memory-intensity gamma, or deadline-tightness beta) over a range of
// values; at each sweep point it generates many random task sets and
// measures the fraction deemed schedulable by each of the three approaches
// (proposed / WP2016 [3] / NPS).  Task sets are analyzed in parallel;
// results are deterministic for a fixed seed regardless of thread count.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"

namespace mcs::exp {

enum class SweepParam { kUtilization, kGamma, kBeta, kNumTasks };

const char* to_string(SweepParam param) noexcept;

struct ExperimentConfig {
  std::string name;   ///< e.g. "fig2a" (used for the CSV file name)
  std::string title;  ///< human-readable description
  gen::GeneratorConfig base;  ///< fixed generation parameters
  SweepParam sweep = SweepParam::kUtilization;
  std::vector<double> values;  ///< sweep points (x axis)
  std::size_t tasksets_per_point = 40;
  std::uint64_t seed = 1;
  analysis::AnalysisOptions analysis;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

struct SweepPoint {
  double x = 0.0;
  std::size_t tasksets = 0;
  /// Schedulable counts indexed by analysis::Approach.
  std::size_t schedulable_proposed = 0;
  std::size_t schedulable_wp = 0;
  std::size_t schedulable_nps = 0;
  /// Task sets where *any* MILP (WP or Proposed analysis) fell back to its
  /// dual bound.  Counted at most once per task set, so always <= tasksets.
  std::size_t relaxation_fallbacks = 0;
  /// Per-analysis fallback splits (a task set can appear in both).
  std::size_t fallbacks_wp = 0;
  std::size_t fallbacks_proposed = 0;
  double seconds = 0.0;  ///< wall time spent on this point
  /// Per-task-set analysis latency percentiles within this point (seconds;
  /// all three approaches per task set).
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;

  double ratio(analysis::Approach approach) const;
};

struct ExperimentResult {
  ExperimentConfig config;
  std::vector<SweepPoint> points;
  double total_seconds = 0.0;
};

/// Runs the experiment (parallel over task sets).
ExperimentResult run_experiment(const ExperimentConfig& config);

/// Prints the result as an aligned table (one row per sweep point with the
/// three schedulability ratios), the format the figures plot.
void print_result(const ExperimentResult& result, std::ostream& out);

/// Writes `<config.name>.csv` into `directory`.
void write_csv(const ExperimentResult& result,
               const std::filesystem::path& directory);

/// Applies MCS_TASKSETS / MCS_SEED / MCS_THREADS environment overrides —
/// lets users scale benches up or down without recompiling.
void apply_env_overrides(ExperimentConfig& config);

}  // namespace mcs::exp
