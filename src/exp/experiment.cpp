#include "exp/experiment.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <iomanip>
#include <mutex>
#include <ostream>
#include <string>

#include "analysis/engine.hpp"
#include "support/contracts.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace mcs::exp {

namespace {

using analysis::Approach;

gen::GeneratorConfig configure_point(const ExperimentConfig& config,
                                     double x) {
  gen::GeneratorConfig g = config.base;
  switch (config.sweep) {
    case SweepParam::kUtilization:
      g.utilization = x;
      break;
    case SweepParam::kGamma:
      g.gamma = x;
      break;
    case SweepParam::kBeta:
      g.beta = x;
      break;
    case SweepParam::kNumTasks:
      g.num_tasks = static_cast<std::size_t>(x);
      break;
  }
  return g;
}

}  // namespace

const char* to_string(SweepParam param) noexcept {
  switch (param) {
    case SweepParam::kUtilization:
      return "U";
    case SweepParam::kGamma:
      return "gamma";
    case SweepParam::kBeta:
      return "beta";
    case SweepParam::kNumTasks:
      return "n";
  }
  return "x";
}

double SweepPoint::ratio(Approach approach) const {
  if (tasksets == 0) return 0.0;
  std::size_t count = 0;
  switch (approach) {
    case Approach::kProposed:
      count = schedulable_proposed;
      break;
    case Approach::kWasilyPellizzoni:
      count = schedulable_wp;
      break;
    case Approach::kNonPreemptive:
      count = schedulable_nps;
      break;
  }
  return static_cast<double>(count) / static_cast<double>(tasksets);
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  MCS_REQUIRE(!config.values.empty(), "experiment without sweep points");
  MCS_REQUIRE(config.tasksets_per_point > 0, "experiment without task sets");

  ExperimentResult result;
  result.config = config;
  const support::telemetry::ScopedTimer timer("exp.run_experiment");
  support::ThreadPool pool(config.threads);
  const auto t_start = std::chrono::steady_clock::now();

  for (std::size_t p = 0; p < config.values.size(); ++p) {
    const double x = config.values[p];
    const gen::GeneratorConfig gen_cfg = configure_point(config, x);
    const auto p_start = std::chrono::steady_clock::now();

    std::atomic<std::size_t> ok_proposed{0}, ok_wp{0}, ok_nps{0},
        fallbacks{0}, fallbacks_wp{0}, fallbacks_proposed{0};
    support::Rng point_rng(config.seed + 0x9e37 * (p + 1));

    // Pre-split one RNG per task set so results do not depend on thread
    // interleaving.
    std::vector<support::Rng> rngs;
    rngs.reserve(config.tasksets_per_point);
    for (std::size_t s = 0; s < config.tasksets_per_point; ++s) {
      rngs.push_back(point_rng.split(s));
    }

    // Per-task-set analysis wall time; slot-per-index, no lock needed.
    std::vector<double> taskset_seconds(config.tasksets_per_point, 0.0);

    support::parallel_for(
        pool, config.tasksets_per_point, [&](std::size_t s) {
          const auto s_start = std::chrono::steady_clock::now();
          support::Rng rng = rngs[s];
          const rt::TaskSet tasks = gen::generate_task_set(gen_cfg, rng);

          // One analysis engine per task set: the three approaches share
          // its formulation caches and solver sessions (serial inside —
          // the sweep already parallelizes across task sets).
          analysis::AnalysisEngine engine;

          const auto nps =
              engine.analyze(tasks, Approach::kNonPreemptive,
                             config.analysis);
          if (nps.schedulable) ok_nps.fetch_add(1);

          const auto wp = engine.analyze_wp(tasks, config.analysis);
          if (wp.schedulable) ok_wp.fetch_add(1);
          if (wp.any_relaxation_fallback) fallbacks_wp.fetch_add(1);

          // Greedy round 0 equals the WP analysis.  When WP succeeded its
          // verdict *is* the proposed one (round 0 all-NLS, schedulable)
          // — including any reliance on a relaxation fallback, which used
          // to go unreported here.  Otherwise hand the WP bounds to the
          // greedy loop as its round 0 so it starts promoting directly.
          bool proposed_ok = wp.schedulable;
          bool proposed_fb = false;
          if (proposed_ok) {
            proposed_fb = wp.any_relaxation_fallback;
          } else {
            const auto prop =
                engine.analyze_proposed(tasks, config.analysis, &wp);
            proposed_ok = prop.schedulable;
            proposed_fb = prop.any_relaxation_fallback;
          }
          if (proposed_fb) fallbacks_proposed.fetch_add(1);
          if (proposed_ok) ok_proposed.fetch_add(1);
          // At most one fallback tick per task set, whichever analyses
          // tripped it — keeps the column <= tasksets.
          if (wp.any_relaxation_fallback || proposed_fb) {
            fallbacks.fetch_add(1);
          }

          const double secs = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - s_start)
                                  .count();
          taskset_seconds[s] = secs;
          support::telemetry::record("exp.taskset_seconds", secs);
        });

    SweepPoint point;
    point.x = x;
    point.tasksets = config.tasksets_per_point;
    point.schedulable_proposed = ok_proposed.load();
    point.schedulable_wp = ok_wp.load();
    point.schedulable_nps = ok_nps.load();
    point.relaxation_fallbacks = fallbacks.load();
    point.fallbacks_wp = fallbacks_wp.load();
    point.fallbacks_proposed = fallbacks_proposed.load();
    point.p50_seconds = support::percentile(taskset_seconds, 0.50);
    point.p90_seconds = support::percentile(taskset_seconds, 0.90);
    point.p99_seconds = support::percentile(taskset_seconds, 0.99);
    point.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      p_start)
            .count();
    support::telemetry::record("exp.point_seconds", point.seconds);
    result.points.push_back(point);
  }

  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_start)
          .count();
  return result;
}

void print_result(const ExperimentResult& result, std::ostream& out) {
  const auto& cfg = result.config;
  out << "# " << cfg.name << " — " << cfg.title << "\n";
  out << "# base: n=" << cfg.base.num_tasks << " U=" << cfg.base.utilization
      << " gamma=" << cfg.base.gamma << " beta=" << cfg.base.beta
      << "; sweep over " << to_string(cfg.sweep) << "; "
      << cfg.tasksets_per_point << " task sets/point; seed=" << cfg.seed
      << "\n";
  out << std::left << std::setw(8) << to_string(cfg.sweep) << std::setw(12)
      << "proposed" << std::setw(12) << "wp2016" << std::setw(12) << "nps"
      << std::setw(12) << "fallbacks" << "seconds\n";
  for (const SweepPoint& p : result.points) {
    out << std::left << std::fixed << std::setprecision(3) << std::setw(8)
        << p.x << std::setw(12) << p.ratio(analysis::Approach::kProposed)
        << std::setw(12) << p.ratio(analysis::Approach::kWasilyPellizzoni)
        << std::setw(12) << p.ratio(analysis::Approach::kNonPreemptive)
        << std::setw(12) << p.relaxation_fallbacks << std::setprecision(2)
        << p.seconds << "\n";
  }
  out << "# total: " << std::fixed << std::setprecision(1)
      << result.total_seconds << " s\n";
}

void write_csv(const ExperimentResult& result,
               const std::filesystem::path& directory) {
  support::CsvWriter csv(directory / (result.config.name + ".csv"));
  // relaxation_fallbacks counts *task sets* with any dual-bound fallback
  // (<= tasksets); fallbacks_wp / fallbacks_proposed split it per analysis.
  csv.write_row({to_string(result.config.sweep), "proposed", "wp2016", "nps",
                 "tasksets", "relaxation_fallbacks", "fallbacks_wp",
                 "fallbacks_proposed", "seconds", "p50_seconds",
                 "p90_seconds", "p99_seconds"});
  for (const SweepPoint& p : result.points) {
    csv.cell(p.x)
        .cell(p.ratio(analysis::Approach::kProposed))
        .cell(p.ratio(analysis::Approach::kWasilyPellizzoni))
        .cell(p.ratio(analysis::Approach::kNonPreemptive))
        .cell(p.tasksets)
        .cell(p.relaxation_fallbacks)
        .cell(p.fallbacks_wp)
        .cell(p.fallbacks_proposed)
        .cell(p.seconds)
        .cell(p.p50_seconds)
        .cell(p.p90_seconds)
        .cell(p.p99_seconds);
    csv.end_row();
  }
}

namespace {

/// Full-string unsigned parse: the *entire* value must be a decimal number
/// within range.  Anything else (empty, trailing junk like "10x", signs,
/// overflow) fails loudly — a typo silently becoming seed 0 or 10 task
/// sets has burned whole sweeps before.
std::uint64_t parse_env_u64(const char* name, const char* value) {
  MCS_REQUIRE(value[0] != '\0',
              std::string(name) + " is set but empty");
  MCS_REQUIRE(value[0] >= '0' && value[0] <= '9',
              std::string(name) + "='" + value +
                  "' is not a non-negative decimal number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  MCS_REQUIRE(errno != ERANGE,
              std::string(name) + "='" + value + "' is out of range");
  MCS_REQUIRE(end != nullptr && *end == '\0',
              std::string(name) + "='" + value +
                  "' has trailing non-numeric characters");
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

void apply_env_overrides(ExperimentConfig& config) {
  if (const char* v = std::getenv("MCS_TASKSETS")) {
    const std::uint64_t parsed = parse_env_u64("MCS_TASKSETS", v);
    MCS_REQUIRE(parsed > 0, "MCS_TASKSETS must be >= 1");
    config.tasksets_per_point = static_cast<std::size_t>(parsed);
  }
  if (const char* v = std::getenv("MCS_SEED")) {
    config.seed = parse_env_u64("MCS_SEED", v);
  }
  if (const char* v = std::getenv("MCS_THREADS")) {
    // 0 is meaningful here: "use hardware concurrency".
    config.threads =
        static_cast<std::size_t>(parse_env_u64("MCS_THREADS", v));
  }
}

}  // namespace mcs::exp
