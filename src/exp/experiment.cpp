#include "exp/experiment.hpp"

#include <cerrno>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <string>

#include "analysis/engine.hpp"
#include "support/contracts.hpp"
#include "support/stats.hpp"
#include "support/telemetry.hpp"

namespace mcs::exp {

namespace {

using analysis::Approach;

gen::GeneratorConfig configure_point(const ExperimentConfig& config,
                                     double x) {
  gen::GeneratorConfig g = config.base;
  switch (config.sweep) {
    case SweepParam::kUtilization:
      g.utilization = x;
      break;
    case SweepParam::kGamma:
      g.gamma = x;
      break;
    case SweepParam::kBeta:
      g.beta = x;
      break;
    case SweepParam::kNumTasks:
      g.num_tasks = static_cast<std::size_t>(x);
      break;
  }
  return g;
}

// Metric order of experiment_sweep_spec; points_from_outcomes and
// write_csv rely on it.
enum Metric : std::size_t {
  kProposed = 0,
  kWp,
  kNps,
  kAnyFallback,
  kFallbackWp,
  kFallbackProposed,
  kMetricCount,
};

}  // namespace

const char* to_string(SweepParam param) noexcept {
  switch (param) {
    case SweepParam::kUtilization:
      return "U";
    case SweepParam::kGamma:
      return "gamma";
    case SweepParam::kBeta:
      return "beta";
    case SweepParam::kNumTasks:
      return "n";
  }
  return "x";
}

double SweepPoint::ratio(Approach approach) const {
  if (tasksets == 0) return 0.0;
  std::size_t count = 0;
  switch (approach) {
    case Approach::kProposed:
      count = schedulable_proposed;
      break;
    case Approach::kWasilyPellizzoni:
      count = schedulable_wp;
      break;
    case Approach::kNonPreemptive:
      count = schedulable_nps;
      break;
  }
  return static_cast<double>(count) / static_cast<double>(tasksets);
}

SweepSpec experiment_sweep_spec(const ExperimentConfig& config) {
  MCS_REQUIRE(!config.values.empty(), "experiment without sweep points");
  MCS_REQUIRE(config.tasksets_per_point > 0, "experiment without task sets");

  SweepSpec spec;
  spec.name = config.name;
  spec.title = config.title;
  spec.axis = to_string(config.sweep);
  spec.values = config.values;
  spec.slots_per_point = config.tasksets_per_point;
  spec.seed = config.seed;
  spec.metrics = {
      {"proposed", MetricSpec::kRatio},
      {"wp2016", MetricSpec::kRatio},
      {"nps", MetricSpec::kRatio},
      // relaxation_fallbacks counts *task sets* with any dual-bound
      // fallback (<= tasksets); fallbacks_wp / fallbacks_proposed split it
      // per analysis.
      {"relaxation_fallbacks", MetricSpec::kCount},
      {"fallbacks_wp", MetricSpec::kCount},
      {"fallbacks_proposed", MetricSpec::kCount},
  };
  spec.evaluate = [config](const SweepUnit& unit, support::Rng& rng) {
    const gen::GeneratorConfig gen_cfg = configure_point(config, unit.x);
    const rt::TaskSet tasks = gen::generate_task_set(gen_cfg, rng);

    // One analysis engine per task set: the three approaches share its
    // formulation caches and solver sessions (serial inside — the sweep
    // already parallelizes across units).
    analysis::AnalysisEngine engine;

    const auto nps =
        engine.analyze(tasks, Approach::kNonPreemptive, config.analysis);
    const auto wp = engine.analyze_wp(tasks, config.analysis);

    // Greedy round 0 equals the WP analysis.  When WP succeeded its
    // verdict *is* the proposed one (round 0 all-NLS, schedulable) —
    // including any reliance on a relaxation fallback.  Otherwise hand the
    // WP bounds to the greedy loop as its round 0 so it starts promoting
    // directly.
    bool proposed_ok = wp.schedulable;
    bool proposed_fb = false;
    if (proposed_ok) {
      proposed_fb = wp.any_relaxation_fallback;
    } else {
      const auto prop =
          engine.analyze_proposed(tasks, config.analysis, &wp);
      proposed_ok = prop.schedulable;
      proposed_fb = prop.any_relaxation_fallback;
    }

    std::vector<std::uint64_t> metrics(kMetricCount, 0);
    metrics[kProposed] = proposed_ok ? 1 : 0;
    metrics[kWp] = wp.schedulable ? 1 : 0;
    metrics[kNps] = nps.schedulable ? 1 : 0;
    // At most one fallback tick per task set, whichever analyses tripped
    // it — keeps the column <= tasksets.
    metrics[kAnyFallback] =
        (wp.any_relaxation_fallback || proposed_fb) ? 1 : 0;
    metrics[kFallbackWp] = wp.any_relaxation_fallback ? 1 : 0;
    metrics[kFallbackProposed] = proposed_fb ? 1 : 0;
    return metrics;
  };
  return spec;
}

std::vector<SweepPoint> points_from_outcomes(
    const ExperimentConfig& config,
    const std::vector<UnitOutcome>& outcomes) {
  const SweepSpec spec = experiment_sweep_spec(config);
  const std::vector<SweepRow> rows = aggregate_outcomes(spec, outcomes);

  // Per-point unit latency samples for the printed percentiles.
  std::vector<std::vector<double>> seconds(rows.size());
  for (const UnitOutcome& unit : outcomes) {
    seconds[unit.point].push_back(unit.seconds);
  }

  std::vector<SweepPoint> points;
  points.reserve(rows.size());
  for (std::size_t p = 0; p < rows.size(); ++p) {
    const SweepRow& row = rows[p];
    SweepPoint point;
    point.x = row.x;
    point.tasksets = row.ok_units;
    point.errors = row.errors;
    point.schedulable_proposed =
        static_cast<std::size_t>(row.metric_sums[kProposed]);
    point.schedulable_wp = static_cast<std::size_t>(row.metric_sums[kWp]);
    point.schedulable_nps = static_cast<std::size_t>(row.metric_sums[kNps]);
    point.relaxation_fallbacks =
        static_cast<std::size_t>(row.metric_sums[kAnyFallback]);
    point.fallbacks_wp =
        static_cast<std::size_t>(row.metric_sums[kFallbackWp]);
    point.fallbacks_proposed =
        static_cast<std::size_t>(row.metric_sums[kFallbackProposed]);
    point.seconds = row.seconds;
    point.p50_seconds = support::percentile(seconds[p], 0.50);
    point.p90_seconds = support::percentile(seconds[p], 0.90);
    point.p99_seconds = support::percentile(seconds[p], 0.99);
    points.push_back(point);
  }
  return points;
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  RunnerOptions options;
  options.threads = config.threads;
  return run_experiment(config, options);
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                const RunnerOptions& options) {
  const support::telemetry::ScopedTimer timer("exp.run_experiment");
  const SweepSpec spec = experiment_sweep_spec(config);
  const SweepRunResult run = run_sweep(spec, options);

  ExperimentResult result;
  result.config = config;
  result.points = points_from_outcomes(config, run.outcomes);
  result.total_seconds = run.total_seconds;
  return result;
}

void print_result(const ExperimentResult& result, std::ostream& out) {
  const auto& cfg = result.config;
  out << "# " << cfg.name << " — " << cfg.title << "\n";
  out << "# base: n=" << cfg.base.num_tasks << " U=" << cfg.base.utilization
      << " gamma=" << cfg.base.gamma << " beta=" << cfg.base.beta
      << "; sweep over " << to_string(cfg.sweep) << "; "
      << cfg.tasksets_per_point << " task sets/point; seed=" << cfg.seed
      << "\n";
  out << std::left << std::setw(8) << to_string(cfg.sweep) << std::setw(12)
      << "proposed" << std::setw(12) << "wp2016" << std::setw(12) << "nps"
      << std::setw(12) << "fallbacks" << "seconds\n";
  for (const SweepPoint& p : result.points) {
    out << std::left << std::fixed << std::setprecision(3) << std::setw(8)
        << p.x << std::setw(12) << p.ratio(analysis::Approach::kProposed)
        << std::setw(12) << p.ratio(analysis::Approach::kWasilyPellizzoni)
        << std::setw(12) << p.ratio(analysis::Approach::kNonPreemptive)
        << std::setw(12) << p.relaxation_fallbacks << std::setprecision(2)
        << p.seconds;
    if (p.errors != 0) {
      out << "  (" << p.errors << " errors)";
    }
    out << "\n";
  }
  out << "# total: " << std::fixed << std::setprecision(1)
      << result.total_seconds << " s\n";
}

void write_csv(const ExperimentResult& result,
               const std::filesystem::path& directory) {
  const SweepSpec spec = experiment_sweep_spec(result.config);
  MCS_REQUIRE(result.points.size() == spec.values.size(),
              "result does not cover every sweep point");
  std::vector<SweepRow> rows;
  rows.reserve(result.points.size());
  for (const SweepPoint& p : result.points) {
    SweepRow row;
    row.x = p.x;
    row.ok_units = p.tasksets;
    row.errors = p.errors;
    row.metric_sums.assign(kMetricCount, 0);
    row.metric_sums[kProposed] = p.schedulable_proposed;
    row.metric_sums[kWp] = p.schedulable_wp;
    row.metric_sums[kNps] = p.schedulable_nps;
    row.metric_sums[kAnyFallback] = p.relaxation_fallbacks;
    row.metric_sums[kFallbackWp] = p.fallbacks_wp;
    row.metric_sums[kFallbackProposed] = p.fallbacks_proposed;
    row.seconds = p.seconds;
    rows.push_back(std::move(row));
  }
  write_sweep_csv(spec, rows, directory / (result.config.name + ".csv"));
}

namespace {

/// Full-string unsigned parse: the *entire* value must be a decimal number
/// within range.  Anything else (empty, trailing junk like "10x", signs,
/// overflow) fails loudly — a typo silently becoming seed 0 or 10 task
/// sets has burned whole sweeps before.
std::uint64_t parse_env_u64(const char* name, const char* value) {
  MCS_REQUIRE(value[0] != '\0',
              std::string(name) + " is set but empty");
  MCS_REQUIRE(value[0] >= '0' && value[0] <= '9',
              std::string(name) + "='" + value +
                  "' is not a non-negative decimal number");
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  MCS_REQUIRE(errno != ERANGE,
              std::string(name) + "='" + value + "' is out of range");
  MCS_REQUIRE(end != nullptr && *end == '\0',
              std::string(name) + "='" + value +
                  "' has trailing non-numeric characters");
  return static_cast<std::uint64_t>(parsed);
}

}  // namespace

void apply_env_overrides(ExperimentConfig& config) {
  if (const char* v = std::getenv("MCS_TASKSETS")) {
    const std::uint64_t parsed = parse_env_u64("MCS_TASKSETS", v);
    MCS_REQUIRE(parsed > 0, "MCS_TASKSETS must be >= 1");
    config.tasksets_per_point = static_cast<std::size_t>(parsed);
  }
  if (const char* v = std::getenv("MCS_SEED")) {
    config.seed = parse_env_u64("MCS_SEED", v);
  }
  if (const char* v = std::getenv("MCS_THREADS")) {
    // 0 is meaningful here: "use hardware concurrency".
    config.threads =
        static_cast<std::size_t>(parse_env_u64("MCS_THREADS", v));
  }
}

void apply_env_overrides(SweepSpec& spec) {
  if (const char* v = std::getenv("MCS_TASKSETS")) {
    const std::uint64_t parsed = parse_env_u64("MCS_TASKSETS", v);
    MCS_REQUIRE(parsed > 0, "MCS_TASKSETS must be >= 1");
    spec.slots_per_point = static_cast<std::size_t>(parsed);
  }
  if (const char* v = std::getenv("MCS_SEED")) {
    spec.seed = parse_env_u64("MCS_SEED", v);
  }
}

}  // namespace mcs::exp
