#include "exp/figures.hpp"

#include "support/contracts.hpp"

namespace mcs::exp {

namespace {

std::vector<double> range(double lo, double hi, double step) {
  std::vector<double> values;
  for (double x = lo; x <= hi + 1e-9; x += step) {
    values.push_back(x);
  }
  return values;
}

}  // namespace

ExperimentConfig figure2_config(char inset) {
  ExperimentConfig cfg;
  cfg.base.beta = 0.3;
  cfg.seed = 2020;
  // Bench-scale solver effort: 2% relative gap and a bounded node budget.
  // Both fallbacks are safe (the dual bound is used), merely pessimistic;
  // the `fallbacks` column of the output reports how often the node budget
  // was hit.  See DESIGN.md §2 / §5.7.
  cfg.analysis.milp.relative_gap = 0.02;
  cfg.analysis.milp.max_nodes = 4000;

  switch (inset) {
    case 'a':
      cfg.name = "fig2a";
      cfg.title =
          "schedulability ratio vs U (n=4, gamma=0.1, beta=0.3)";
      cfg.base.num_tasks = 4;
      cfg.base.gamma = 0.1;
      cfg.sweep = SweepParam::kUtilization;
      cfg.values = range(0.1, 0.9, 0.1);
      cfg.tasksets_per_point = 30;
      break;
    case 'b':
      cfg.name = "fig2b";
      cfg.title =
          "schedulability ratio vs U (n=6, gamma=0.1, beta=0.3)";
      cfg.base.num_tasks = 6;
      cfg.base.gamma = 0.1;
      cfg.sweep = SweepParam::kUtilization;
      cfg.values = range(0.1, 0.9, 0.1);
      cfg.tasksets_per_point = 20;
      break;
    case 'c':
      cfg.name = "fig2c";
      cfg.title =
          "schedulability ratio vs U (n=4, gamma=0.4, beta=0.3)";
      cfg.base.num_tasks = 4;
      cfg.base.gamma = 0.4;
      cfg.sweep = SweepParam::kUtilization;
      cfg.values = range(0.1, 0.9, 0.1);
      cfg.tasksets_per_point = 30;
      break;
    case 'd':
      cfg.name = "fig2d";
      cfg.title =
          "schedulability ratio vs U (n=6, gamma=0.4, beta=0.3)";
      cfg.base.num_tasks = 6;
      cfg.base.gamma = 0.4;
      cfg.sweep = SweepParam::kUtilization;
      cfg.values = range(0.1, 0.9, 0.1);
      cfg.tasksets_per_point = 20;
      break;
    case 'e':
      cfg.name = "fig2e";
      cfg.title =
          "schedulability ratio vs gamma (n=4, U=0.35, beta=0.3)";
      cfg.base.num_tasks = 4;
      cfg.base.utilization = 0.35;
      cfg.sweep = SweepParam::kGamma;
      cfg.values = range(0.1, 0.5, 0.05);
      cfg.tasksets_per_point = 30;
      break;
    case 'f':
      cfg.name = "fig2f";
      cfg.title =
          "schedulability ratio vs beta (n=4, U=0.35, gamma=0.25)";
      cfg.base.num_tasks = 4;
      cfg.base.utilization = 0.35;
      cfg.base.gamma = 0.25;
      cfg.sweep = SweepParam::kBeta;
      cfg.values = range(0.05, 0.95, 0.1);
      cfg.tasksets_per_point = 30;
      break;
    default:
      MCS_REQUIRE(false, "figure2_config: inset must be 'a'..'f'");
  }
  apply_env_overrides(cfg);
  return cfg;
}

}  // namespace mcs::exp
