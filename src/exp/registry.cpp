#include "exp/registry.hpp"

#include "analysis/greedy.hpp"
#include "analysis/opa.hpp"
#include "analysis/response_time.hpp"
#include "analysis/schedulability.hpp"
#include "exp/experiment.hpp"
#include "exp/figures.hpp"
#include "gen/generator.hpp"

namespace mcs::exp {

namespace {

std::vector<double> range(double lo, double hi, double step) {
  std::vector<double> values;
  for (double x = lo; x <= hi + 1e-9; x += step) {
    values.push_back(x);
  }
  return values;
}

/// Bench-scale solver effort shared by the ablation sweeps (matches
/// figure2_config): 2% relative gap, bounded node budget.
analysis::AnalysisOptions bench_options() {
  analysis::AnalysisOptions options;
  options.milp.relative_gap = 0.02;
  options.milp.max_nodes = 4000;
  return options;
}

template <char Inset>
SweepSpec make_figure2() {
  return experiment_sweep_spec(figure2_config(Inset));
}

/// Schedulability with a fixed all-LS marking (no greedy).
bool all_ls_schedulable(rt::TaskSet tasks,
                        const analysis::AnalysisOptions& options) {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].latency_sensitive = true;
  }
  for (rt::TaskIndex i = 0; i < tasks.size(); ++i) {
    if (!analysis::bound_response_time(tasks, i, options).schedulable) {
      return false;
    }
  }
  return true;
}

// LS-marking ablation (paper §VI): the greedy algorithm marks tasks
// latency-sensitive one deadline-miss at a time.  Compares, as deadline
// tightness beta varies: none (the analysis of [3]) / greedy (the paper's
// algorithm) / all (every task LS — predicted to backfire: urgent
// executions serialize copy-ins and every cancellation re-issues a load).
SweepSpec make_ablation_ls() {
  SweepSpec spec;
  spec.name = "ablation_ls";
  spec.title = "LS-marking ablation (n=4, U=0.35, gamma=0.25)";
  spec.axis = "beta";
  spec.values = range(0.05, 0.95, 0.15);
  spec.slots_per_point = 25;
  spec.seed = 811;
  spec.metrics = {{"none", MetricSpec::kRatio},
                  {"greedy", MetricSpec::kRatio},
                  {"all", MetricSpec::kRatio}};
  spec.evaluate = [](const SweepUnit& unit, support::Rng& rng) {
    const analysis::AnalysisOptions options = bench_options();
    gen::GeneratorConfig cfg;
    cfg.num_tasks = 4;
    cfg.utilization = 0.35;
    cfg.gamma = 0.25;
    cfg.beta = unit.x;
    const rt::TaskSet tasks = gen::generate_task_set(cfg, rng);

    analysis::AnalysisOptions wp = options;
    wp.ignore_ls = true;
    bool none_ok = true;
    for (rt::TaskIndex i = 0; i < tasks.size() && none_ok; ++i) {
      none_ok = analysis::bound_response_time(tasks, i, wp).schedulable;
    }
    const bool greedy_ok =
        none_ok || analysis::analyze_proposed(tasks, options).schedulable;
    const bool all_ok = all_ls_schedulable(tasks, options);
    return std::vector<std::uint64_t>{none_ok ? 1u : 0u, greedy_ok ? 1u : 0u,
                                      all_ok ? 1u : 0u};
  };
  apply_env_overrides(spec);
  return spec;
}

// Priority-assignment ablation: deadline-monotonic (the default, DESIGN.md
// §5.2) versus Audsley's optimal priority assignment under the NPS and
// WP2016 analyses, across utilization.  OPA dominates DM by construction;
// the gap measures how much the default leaves on the table under
// non-preemptive blocking.
SweepSpec make_ablation_priority() {
  SweepSpec spec;
  spec.name = "ablation_priority";
  spec.title = "priority assignment ablation (n=4, gamma=0.2)";
  spec.axis = "U";
  spec.values = range(0.2, 0.6, 0.1);
  spec.slots_per_point = 25;
  spec.seed = 271;
  spec.metrics = {{"nps_dm", MetricSpec::kRatio},
                  {"nps_opa", MetricSpec::kRatio},
                  {"wp_dm", MetricSpec::kRatio},
                  {"wp_opa", MetricSpec::kRatio}};
  spec.evaluate = [](const SweepUnit& unit, support::Rng& rng) {
    const analysis::AnalysisOptions options = bench_options();
    gen::GeneratorConfig cfg;
    cfg.num_tasks = 4;
    cfg.utilization = unit.x;
    cfg.gamma = 0.2;
    cfg.beta = 0.3;
    const rt::TaskSet tasks = gen::generate_task_set(cfg, rng);

    const bool n_dm =
        analysis::analyze(tasks, analysis::Approach::kNonPreemptive, options)
            .schedulable;
    const bool n_opa =
        n_dm ||
        audsley_assign(tasks, analysis::Approach::kNonPreemptive, options)
            .schedulable;
    const bool w_dm =
        analysis::analyze(tasks, analysis::Approach::kWasilyPellizzoni,
                          options)
            .schedulable;
    const bool w_opa =
        w_dm ||
        audsley_assign(tasks, analysis::Approach::kWasilyPellizzoni, options)
            .schedulable;
    return std::vector<std::uint64_t>{n_dm ? 1u : 0u, n_opa ? 1u : 0u,
                                      w_dm ? 1u : 0u, w_opa ? 1u : 0u};
  };
  apply_env_overrides(spec);
  return spec;
}

}  // namespace

const std::vector<SweepEntry>& sweep_registry() {
  static const std::vector<SweepEntry> entries = {
      {"fig2a", "schedulability vs U (n=4, gamma=0.1)", &make_figure2<'a'>},
      {"fig2b", "schedulability vs U (n=6, gamma=0.1)", &make_figure2<'b'>},
      {"fig2c", "schedulability vs U (n=4, gamma=0.4)", &make_figure2<'c'>},
      {"fig2d", "schedulability vs U (n=6, gamma=0.4)", &make_figure2<'d'>},
      {"fig2e", "schedulability vs gamma (n=4, U=0.35)", &make_figure2<'e'>},
      {"fig2f", "schedulability vs beta (n=4, U=0.35)", &make_figure2<'f'>},
      {"ablation_ls", "LS-marking ablation: none / greedy / all",
       &make_ablation_ls},
      {"ablation_priority", "priority assignment: DM vs Audsley OPA",
       &make_ablation_priority},
  };
  return entries;
}

const SweepEntry* find_sweep(std::string_view name) {
  for (const SweepEntry& entry : sweep_registry()) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

}  // namespace mcs::exp
