// Crash-safe JSONL result log for sweep runs (schema "mcs-sweep-log-v1").
//
// One line per record.  The first line of a fresh log is a header that
// fingerprints the sweep (name, seed, axis, point/slot counts, a hash of
// the sweep values, shard layout, metric names); every subsequent line is
// the final outcome of one (point, slot) work unit:
//
//   {"schema":"mcs-sweep-log-v1","name":"fig2a","seed":2020,...}
//   {"point":0,"slot":3,"status":"ok","attempts":1,"seconds":0.12,
//    "metrics":[1,1,1,0,0,0]}
//   {"point":0,"slot":4,"status":"error","attempts":2,"seconds":0.2,
//    "error":"..."}
//
// Records are appended with a single POSIX O_APPEND write per line, so a
// SIGKILL can at worst leave one partial trailing line — which the reader
// drops.  `--resume` reads the log back, verifies the header against the
// sweep it is about to run, and skips every unit that already has a
// record.  Shard logs are merged the same way.
//
// The parser handles exactly the flat JSON this writer produces (string /
// number / array-of-number values); the repo deliberately has no JSON
// dependency.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace mcs::exp {

/// Final outcome of one (point, slot) work unit.
struct UnitOutcome {
  std::size_t point = 0;
  std::size_t slot = 0;
  bool ok = false;
  std::uint32_t attempts = 0;
  double seconds = 0.0;
  /// Metric counts aligned with SweepSpec::metrics; empty on error.
  std::vector<std::uint64_t> metrics;
  /// Exception text of the last failed attempt; empty on success.
  std::string error;
};

/// Sweep fingerprint written as the first line of every log.
struct SweepLogHeader {
  std::string name;
  std::string axis;
  std::uint64_t seed = 0;
  std::size_t points = 0;
  std::size_t slots = 0;
  std::uint64_t values_hash = 0;
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::vector<std::string> metrics;

  /// True when the logs describe the same sweep (shard layout may differ —
  /// that is the point of merging).
  bool same_sweep(const SweepLogHeader& other) const;
};

/// Order- and duplication-tolerant content of one log file.
struct SweepLogContents {
  std::optional<SweepLogHeader> header;
  std::vector<UnitOutcome> units;
  /// True when the file ended in a partial line (crash artifact, dropped).
  bool truncated_tail = false;
};

/// Reads a sweep log.  A missing file yields empty contents; a partial
/// trailing line is dropped (see truncated_tail); any other malformed line
/// throws std::runtime_error.
SweepLogContents read_sweep_log(const std::filesystem::path& path);

/// Append-only log writer.  Each append() issues one O_APPEND write of a
/// complete line, so concurrent appends from worker threads interleave at
/// line granularity and a killed process never corrupts earlier records.
class SweepLogAppender {
 public:
  /// Opens (creating if needed) `path` for appending.  When `truncate`,
  /// existing content is discarded first (fresh, non-resume run).
  SweepLogAppender(const std::filesystem::path& path, bool truncate);
  ~SweepLogAppender();

  SweepLogAppender(const SweepLogAppender&) = delete;
  SweepLogAppender& operator=(const SweepLogAppender&) = delete;

  void append_header(const SweepLogHeader& header);
  void append(const UnitOutcome& outcome);

 private:
  void write_line(const std::string& line);

  int fd_ = -1;
  std::filesystem::path path_;
};

}  // namespace mcs::exp
