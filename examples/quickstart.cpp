// Quickstart: the smallest end-to-end tour of the public API.
//
//   1. describe a task set (three-phase tasks: copy-in / execute / copy-out);
//   2. bound worst-case response times under the three approaches
//      (proposed protocol, Wasily-Pellizzoni 2016 [3], non-preemptive);
//   3. simulate the schedule and compare observed response times against
//      the analytical bounds.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iomanip>
#include <iostream>

#include "analysis/schedulability.hpp"
#include "rt/task.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"

using namespace mcs;

int main() {
  // --- 1. Describe the workload -------------------------------------------
  // Times are integer ticks; pick any unit you like (here: microseconds).
  rt::TaskSet tasks;
  {
    rt::Task control;
    control.name = "control";   // tight-deadline control loop
    control.exec = 300;         // C: execution phase WCET
    control.copy_in = 60;       // l: DMA load, global -> local memory
    control.copy_out = 60;      // u: DMA unload, local -> global memory
    control.period = 2'000;     // T: minimum inter-arrival
    control.deadline = 1'700;   // D <= T (constrained deadline)
    tasks.push_back(control);

    rt::Task vision;
    vision.name = "vision";     // memory-hungry perception task
    vision.exec = 900;
    vision.copy_in = 350;
    vision.copy_out = 350;
    vision.period = 5'000;
    vision.deadline = 5'000;
    tasks.push_back(vision);

    rt::Task logging;
    logging.name = "logging";   // background bookkeeping
    logging.exec = 600;
    logging.copy_in = 150;
    logging.copy_out = 150;
    logging.period = 10'000;
    logging.deadline = 10'000;
    tasks.push_back(logging);
  }
  tasks.assign_deadline_monotonic_priorities();
  tasks.validate();

  // --- 2. Analyze ----------------------------------------------------------
  std::cout << "Worst-case response time bounds (ticks):\n";
  std::cout << std::left << std::setw(10) << "task" << std::setw(10) << "D"
            << std::setw(12) << "proposed" << std::setw(12) << "wp2016"
            << std::setw(12) << "nps" << "\n";

  const auto proposed =
      analysis::analyze(tasks, analysis::Approach::kProposed);
  const auto wp =
      analysis::analyze(tasks, analysis::Approach::kWasilyPellizzoni);
  const auto nps =
      analysis::analyze(tasks, analysis::Approach::kNonPreemptive);

  const auto show = [](rt::Time wcrt) {
    return wcrt == rt::kTimeMax ? std::string("unbounded")
                                : std::to_string(wcrt);
  };
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::cout << std::left << std::setw(10) << tasks[i].name << std::setw(10)
              << tasks[i].deadline << std::setw(12) << show(proposed.wcrt[i])
              << std::setw(12) << show(wp.wcrt[i]) << std::setw(12)
              << show(nps.wcrt[i])
              << (proposed.ls_flags[i] ? "  <- marked latency-sensitive"
                                       : "")
              << "\n";
  }
  std::cout << "\nschedulable?  proposed=" << proposed.schedulable
            << "  wp2016=" << wp.schedulable << "  nps=" << nps.schedulable
            << "\n\n";

  // --- 3. Simulate and cross-check ----------------------------------------
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i].latency_sensitive = proposed.ls_flags[i];
  }
  const auto releases = sim::synchronous_periodic_releases(tasks, 100'000);
  const auto trace =
      sim::simulate(tasks, sim::Protocol::kProposed, releases);

  std::cout << "Simulated worst observed response (synchronous periodic "
               "releases):\n";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::cout << "  " << std::setw(10) << tasks[i].name
              << " observed=" << trace.worst_response(i)
              << "  bound=" << show(proposed.wcrt[i]) << "\n";
  }
  std::cout << "(observed <= bound must hold; bounds cover *all* release "
               "patterns, so slack is expected)\n";
  return 0;
}
