// Multicore deployment walk-through (paper §II): partition a task set onto
// P cores, account for global-memory contention among the per-core DMA
// engines (rt/contention.hpp — the paper's [7,8] dependency), and analyze
// each core in isolation under the proposed protocol.
#include <iomanip>
#include <iostream>

#include "analysis/schedulability.hpp"
#include "gen/generator.hpp"
#include "rt/contention.hpp"
#include "support/rng.hpp"

using namespace mcs;

int main() {
  constexpr std::size_t kCores = 4;
  support::Rng rng(21);

  // A 16-task workload with total execution utilization 1.2 across 4 cores.
  gen::GeneratorConfig cfg;
  cfg.num_tasks = 16;
  cfg.utilization = 1.2;
  cfg.gamma = 0.15;
  cfg.beta = 0.7;
  const rt::TaskSet flat = gen::generate_task_set(cfg, rng);

  const auto cores = gen::partition_worst_fit(
      {flat.tasks().begin(), flat.tasks().end()}, kCores);

  std::cout << "=== " << kCores << "-core system, " << flat.size()
            << " tasks, worst-fit partitioning ===\n\n";

  for (const auto policy : {rt::ContentionPolicy::kDemandAware,
                            rt::ContentionPolicy::kFullyBacklogged}) {
    const auto inflated = rt::apply_memory_contention(cores, policy);
    std::cout << "--- memory contention model: " << to_string(policy)
              << " ---\n";
    bool all_ok = true;
    for (std::size_t m = 0; m < inflated.size(); ++m) {
      const double factor = rt::contention_factor(cores, m, policy);
      const auto result =
          analysis::analyze(inflated[m], analysis::Approach::kProposed);
      all_ok = all_ok && result.schedulable;
      std::size_t ls_count = 0;
      for (const bool f : result.ls_flags) ls_count += f ? 1 : 0;
      std::cout << "core " << m << ": " << inflated[m].size() << " tasks, "
                << "U=" << std::fixed << std::setprecision(2)
                << inflated[m].utilization()
                << ", DMA inflation x" << std::setprecision(2) << factor
                << " -> " << (result.schedulable ? "schedulable" : "MISS")
                << " (" << ls_count << " LS)\n";
    }
    std::cout << "system: " << (all_ok ? "SCHEDULABLE" : "NOT SCHEDULABLE")
              << "\n\n";
  }

  std::cout << "Reading: the demand-aware arbiter model charges each core\n"
               "only for the DMA bandwidth its neighbours can actually use;\n"
               "the fully-backlogged model multiplies every transfer by the\n"
               "core count and is markedly more pessimistic.\n";
  return 0;
}
