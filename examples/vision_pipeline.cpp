// Vision pipeline scenario: memory-intensive tasks, where hiding DMA
// transfers behind execution pays off most (paper §VII, Figure 2(e)).
//
// The example sweeps the memory-intensity factor gamma for a fixed
// camera/detection/tracking pipeline and prints which approaches keep the
// set schedulable — demonstrating (i) the growing advantage of the
// DMA-overlap protocols as gamma grows and (ii) the NPS/WP2016 crossover.
#include <iomanip>
#include <iostream>

#include "analysis/schedulability.hpp"
#include "rt/task.hpp"

using namespace mcs;

namespace {

/// Builds the pipeline for a given memory-intensity gamma = mem / exec.
rt::TaskSet make_pipeline(double gamma) {
  struct Spec {
    const char* name;
    rt::Time exec;
    rt::Time period;
    rt::Time deadline;
  };
  // Times in microseconds; a 30 fps camera drives the 33 ms base period.
  const Spec specs[] = {
      {"capture", 2'000, 33'000, 16'500},
      {"preproc", 4'500, 33'000, 26'000},
      {"detect", 9'000, 66'000, 62'000},
      {"track", 3'500, 33'000, 32'000},
      {"fusion", 2'500, 66'000, 64'000},
  };
  rt::TaskSet tasks;
  for (const Spec& s : specs) {
    rt::Task t;
    t.name = s.name;
    t.exec = s.exec;
    t.copy_in = static_cast<rt::Time>(gamma * static_cast<double>(s.exec));
    t.copy_out = t.copy_in;
    t.period = s.period;
    t.deadline = s.deadline;
    tasks.push_back(t);
  }
  tasks.assign_deadline_monotonic_priorities();
  tasks.validate();
  return tasks;
}

}  // namespace

int main() {
  std::cout << "=== Vision pipeline: schedulability vs memory intensity "
               "(gamma = mem/exec) ===\n\n";
  std::cout << std::left << std::setw(8) << "gamma" << std::setw(11)
            << "proposed" << std::setw(11) << "wp2016" << std::setw(11)
            << "nps" << "LS tasks chosen\n";

  for (double gamma = 0.05; gamma <= 0.61; gamma += 0.05) {
    const rt::TaskSet tasks = make_pipeline(gamma);
    const auto prop = analysis::analyze(tasks, analysis::Approach::kProposed);
    const auto wp =
        analysis::analyze(tasks, analysis::Approach::kWasilyPellizzoni);
    const auto nps =
        analysis::analyze(tasks, analysis::Approach::kNonPreemptive);

    std::string ls_names;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      if (prop.ls_flags[i]) {
        if (!ls_names.empty()) ls_names += ", ";
        ls_names += tasks[i].name;
      }
    }
    std::cout << std::left << std::fixed << std::setprecision(2)
              << std::setw(8) << gamma << std::setw(11)
              << (prop.schedulable ? "yes" : "no") << std::setw(11)
              << (wp.schedulable ? "yes" : "no") << std::setw(11)
              << (nps.schedulable ? "yes" : "no")
              << (ls_names.empty() ? "-" : ls_names) << "\n";
  }

  std::cout
      << "\nReading: wp2016 falls first — capture's tight deadline cannot\n"
         "absorb two blocking intervals.  The proposed protocol keeps the\n"
         "pipeline alive longer by marking capture latency-sensitive (one\n"
         "blocking interval, rule R3-R5).  At high gamma NPS briefly wins:\n"
         "the interval analyses charge eta+1 whole intervals to the\n"
         "lowest-priority task (fusion), while NPS's busy window stays\n"
         "short — the same trade-off the paper's Figure 2 explores across\n"
         "random ensembles.\n";
  return 0;
}
