// Sensor-to-actuator chain: the "communicating tasks" extension the paper
// flags as future work (§IV-A / §VIII).
//
// A sense -> filter -> actuate chain shares data through global memory;
// rule R2's eager copy-out makes the hand-off predictable.  The example
// computes the compositional end-to-end data-age bound from per-task WCRTs
// under each protocol and validates it against the age actually measured
// on a simulated periodic schedule.
#include <iomanip>
#include <iostream>

#include "analysis/chains.hpp"
#include "analysis/schedulability.hpp"
#include "rt/chain.hpp"
#include "sim/chain_age.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"

using namespace mcs;

namespace {

rt::Task make(std::string name, rt::Time exec, rt::Time mem, rt::Time period,
              rt::Time deadline) {
  rt::Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  return t;
}

}  // namespace

int main() {
  // Times in microseconds.
  rt::TaskSet tasks;
  tasks.push_back(make("sense", 400, 150, 5'000, 4'000));
  tasks.push_back(make("filter", 900, 300, 10'000, 9'000));
  tasks.push_back(make("actuate", 300, 100, 10'000, 8'000));
  tasks.push_back(make("logger", 1'500, 600, 50'000, 45'000));
  tasks.assign_deadline_monotonic_priorities();
  tasks.validate();

  rt::Chain chain;
  chain.name = "sense->filter->actuate";
  chain.tasks = {0, 1, 2};
  chain.max_data_age = 45'000;
  rt::validate_chain(tasks, chain);

  std::cout << "=== Cause-effect chain " << chain.name
            << " (age constraint " << chain.max_data_age << ") ===\n\n";
  std::cout << std::left << std::setw(12) << "approach" << std::setw(14)
            << "schedulable" << std::setw(14) << "age bound"
            << std::setw(14) << "measured" << "within bound?\n";

  struct Row {
    analysis::Approach approach;
    sim::Protocol protocol;
  };
  const Row rows[] = {
      {analysis::Approach::kProposed, sim::Protocol::kProposed},
      {analysis::Approach::kWasilyPellizzoni,
       sim::Protocol::kWasilyPellizzoni},
      {analysis::Approach::kNonPreemptive, sim::Protocol::kNonPreemptive},
  };
  for (const Row& row : rows) {
    const auto result = analysis::analyze(tasks, row.approach);
    const auto bound = analysis::chain_age_bound(tasks, chain, result.wcrt);

    rt::TaskSet marked = tasks;
    for (std::size_t i = 0; i < marked.size(); ++i) {
      marked[i].latency_sensitive = result.ls_flags[i];
    }
    const auto releases =
        sim::synchronous_periodic_releases(marked, 400'000);
    const auto trace = sim::simulate(marked, row.protocol, releases);
    const auto measured = sim::measure_chain_age(marked, chain, trace);

    std::cout << std::left << std::setw(12) << to_string(row.approach)
              << std::setw(14) << (result.schedulable ? "yes" : "no");
    if (bound.valid) {
      std::cout << std::setw(14) << bound.max_data_age;
    } else {
      std::cout << std::setw(14) << "-";
    }
    if (measured.samples > 0) {
      std::cout << std::setw(14) << measured.max_age;
    } else {
      std::cout << std::setw(14) << "-";
    }
    const bool ok = bound.valid && measured.samples > 0 &&
                    measured.max_age <= bound.max_data_age;
    std::cout << (bound.valid ? (ok ? "yes" : "VIOLATED") : "n/a") << "\n";
  }

  std::cout << "\nThe bound composes per-stage periods and response times\n"
               "(R_1 + sum over hops of T_i + R_i + R_{i+1}); the measured\n"
               "age tracks the actual sampling points (copy-in starts) in\n"
               "the trace.\n";
  return 0;
}
