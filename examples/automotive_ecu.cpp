// Automotive ECU scenario: the workload class that motivates the paper's
// latency-sensitive task support (§I).
//
// A single core of an engine-control unit runs a mix of tasks.  Two of them
// — crankshaft-synchronous injection control and airbag-crash evaluation —
// tolerate almost no scheduling delay (latency-sensitive), while the rest
// are throughput-oriented.  The example shows:
//
//   * the WP2016 protocol loses the injection task to double blocking;
//   * the greedy algorithm of §VI finds an LS marking under which the
//     proposed protocol schedules the whole set;
//   * the resulting LS marking matches the intuition (the tight-deadline
//     tasks get marked).
#include <iomanip>
#include <iostream>

#include "analysis/schedulability.hpp"
#include "rt/task.hpp"
#include "sim/checker.hpp"
#include "sim/engine.hpp"
#include "sim/job_source.hpp"

using namespace mcs;

namespace {

rt::Task make(std::string name, rt::Time exec, rt::Time mem, rt::Time period,
              rt::Time deadline) {
  rt::Task t;
  t.name = std::move(name);
  t.exec = exec;
  t.copy_in = mem;
  t.copy_out = mem;
  t.period = period;
  t.deadline = deadline;
  return t;
}

}  // namespace

int main() {
  // Times in microseconds.
  rt::TaskSet ecu;
  ecu.push_back(make("injection", 180, 40, 2'000, 1'600));  // crank-synced
  ecu.push_back(make("airbag", 120, 30, 5'000, 1'900));     // crash eval
  ecu.push_back(make("lambda", 400, 90, 10'000, 6'000));    // O2 control
  ecu.push_back(make("knock", 500, 120, 10'000, 8'000));    // knock filter
  ecu.push_back(make("diag", 900, 250, 50'000, 40'000));    // OBD diagnosis
  ecu.push_back(make("logger", 700, 350, 100'000, 90'000)); // flight record
  ecu.assign_deadline_monotonic_priorities();
  ecu.validate();

  std::cout << "=== Automotive ECU core: " << ecu.size() << " tasks, "
            << "U = " << std::fixed << std::setprecision(3)
            << ecu.utilization()
            << " (with memory phases: " << ecu.total_utilization()
            << ") ===\n\n";

  const auto wp =
      analysis::analyze(ecu, analysis::Approach::kWasilyPellizzoni);
  const auto nps = analysis::analyze(ecu, analysis::Approach::kNonPreemptive);
  const auto prop = analysis::analyze(ecu, analysis::Approach::kProposed);

  std::cout << std::left << std::setw(11) << "task" << std::setw(9) << "D"
            << std::setw(10) << "wp2016" << std::setw(10) << "nps"
            << std::setw(10) << "proposed" << "LS?\n";
  for (std::size_t i = 0; i < ecu.size(); ++i) {
    const auto show = [](rt::Time w) {
      return w == rt::kTimeMax ? std::string("-") : std::to_string(w);
    };
    std::cout << std::left << std::setw(11) << ecu[i].name << std::setw(9)
              << ecu[i].deadline << std::setw(10) << show(wp.wcrt[i])
              << std::setw(10) << show(nps.wcrt[i]) << std::setw(10)
              << show(prop.wcrt[i])
              << (prop.ls_flags[i] ? "yes" : "no") << "\n";
  }
  std::cout << "\nschedulable: wp2016=" << wp.schedulable
            << " nps=" << nps.schedulable
            << " proposed=" << prop.schedulable << "\n\n";

  if (prop.schedulable) {
    // Validate by simulation with the chosen LS marking.
    rt::TaskSet marked = ecu;
    for (std::size_t i = 0; i < marked.size(); ++i) {
      marked[i].latency_sensitive = prop.ls_flags[i];
    }
    const auto releases =
        sim::synchronous_periodic_releases(marked, 1'000'000);
    const auto trace =
        sim::simulate(marked, sim::Protocol::kProposed, releases);
    const auto check =
        sim::check_trace(marked, sim::Protocol::kProposed, trace);
    std::cout << "simulation over 1s horizon: "
              << trace.jobs.size() << " jobs, deadline misses: "
              << trace.deadline_misses()
              << ", protocol invariants: " << (check.ok() ? "OK" : "BROKEN")
              << "\n";
    for (std::size_t i = 0; i < marked.size(); ++i) {
      std::cout << "  " << std::setw(11) << marked[i].name
                << " observed R = " << std::setw(7)
                << trace.worst_response(i) << "  bound = " << prop.wcrt[i]
                << "\n";
    }
  }
  return 0;
}
