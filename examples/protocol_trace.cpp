// Trace explorer: generate a random task set, simulate it under a chosen
// protocol, and print the interval schedule as an ASCII Gantt chart — the
// quickest way to *see* rules R1-R6 in action (copy-in cancellations,
// urgent promotions, partition swaps).
//
// Usage: protocol_trace [protocol] [n] [U] [gamma] [seed]
//   protocol: proposed | wp | nps        (default proposed)
//   n:        number of tasks            (default 3)
//   U:        total utilization          (default 0.5)
//   gamma:    memory intensity           (default 0.3)
//   seed:     RNG seed                   (default 1)
#include <cstdlib>
#include <iostream>
#include <string>

#include "gen/generator.hpp"
#include "rt/types.hpp"
#include "sim/checker.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"
#include "sim/job_source.hpp"
#include "support/rng.hpp"

using namespace mcs;

int main(int argc, char** argv) {
  const std::string proto_arg = argc > 1 ? argv[1] : "proposed";
  sim::Protocol protocol = sim::Protocol::kProposed;
  if (proto_arg == "wp") {
    protocol = sim::Protocol::kWasilyPellizzoni;
  } else if (proto_arg == "nps") {
    protocol = sim::Protocol::kNonPreemptive;
  } else if (proto_arg != "proposed") {
    std::cerr << "unknown protocol '" << proto_arg
              << "' (use proposed | wp | nps)\n";
    return 1;
  }
  const std::size_t n =
      argc > 2 ? static_cast<std::size_t>(std::strtoul(argv[2], nullptr, 10))
               : 3;
  const double utilization = argc > 3 ? std::strtod(argv[3], nullptr) : 0.5;
  const double gamma = argc > 4 ? std::strtod(argv[4], nullptr) : 0.3;
  const std::uint64_t seed =
      argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

  support::Rng rng(seed);
  gen::GeneratorConfig cfg;
  cfg.num_tasks = n;
  cfg.utilization = utilization;
  cfg.gamma = gamma;
  // Short periods so the whole trace fits on screen.
  cfg.period_min = 10.0;
  cfg.period_max = 30.0;
  rt::TaskSet tasks = gen::generate_task_set(cfg, rng);
  // Mark the highest-priority task latency-sensitive so R3-R5 can fire.
  if (protocol == sim::Protocol::kProposed) {
    tasks[tasks.by_priority().front()].latency_sensitive = true;
  }

  std::cout << "task set (seed " << seed << "):\n";
  for (const auto& t : tasks) {
    std::cout << "  " << t.name << ": C=" << t.exec << " l=" << t.copy_in
              << " u=" << t.copy_out << " T=" << t.period
              << " D=" << t.deadline << " prio=" << t.priority
              << (t.latency_sensitive ? " [LS]" : "") << "\n";
  }

  const rt::Time horizon = 60 * rt::kTicksPerUnit;
  const auto releases =
      sim::random_sporadic_releases(tasks, horizon, 0.4, rng);
  const auto trace = sim::simulate(tasks, protocol, releases);

  sim::GanttOptions opt;
  opt.ticks_per_char = rt::kTicksPerUnit / 2;  // 2 chars per time unit
  opt.max_width = 200;
  std::cout << "\n" << sim::render_gantt(tasks, protocol, trace);

  const auto check = sim::check_trace(tasks, protocol, trace);
  if (!check.ok()) {
    std::cout << "\nINVARIANT VIOLATIONS:\n";
    for (const auto& v : check.violations) {
      std::cout << "  " << v << "\n";
    }
    return 2;
  }
  std::cout << "\nall protocol invariants hold on this trace\n";
  return 0;
}
