# Empty dependencies file for bench_fig2e.
# This may be replaced when dependencies are built.
