
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_priority.cpp" "bench/CMakeFiles/bench_ablation_priority.dir/bench_ablation_priority.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_priority.dir/bench_ablation_priority.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/mcs_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/mcs_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/mcs_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/mcs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcs_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mcs_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
