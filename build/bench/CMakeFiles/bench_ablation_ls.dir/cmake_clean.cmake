file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ls.dir/bench_ablation_ls.cpp.o"
  "CMakeFiles/bench_ablation_ls.dir/bench_ablation_ls.cpp.o.d"
  "bench_ablation_ls"
  "bench_ablation_ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
