# Empty dependencies file for bench_ablation_ls.
# This may be replaced when dependencies are built.
