# Empty dependencies file for bench_fig2c.
# This may be replaced when dependencies are built.
