file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c.dir/bench_fig2c.cpp.o"
  "CMakeFiles/bench_fig2c.dir/bench_fig2c.cpp.o.d"
  "bench_fig2c"
  "bench_fig2c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
