# Empty compiler generated dependencies file for bench_fig2f.
# This may be replaced when dependencies are built.
