file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2f.dir/bench_fig2f.cpp.o"
  "CMakeFiles/bench_fig2f.dir/bench_fig2f.cpp.o.d"
  "bench_fig2f"
  "bench_fig2f.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2f.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
