# Empty compiler generated dependencies file for bench_fig2d.
# This may be replaced when dependencies are built.
