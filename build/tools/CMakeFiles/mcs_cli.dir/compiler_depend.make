# Empty compiler generated dependencies file for mcs_cli.
# This may be replaced when dependencies are built.
