file(REMOVE_RECURSE
  "CMakeFiles/mcs_cli.dir/mcs_cli.cpp.o"
  "CMakeFiles/mcs_cli.dir/mcs_cli.cpp.o.d"
  "mcs_cli"
  "mcs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
