# Empty compiler generated dependencies file for multicore_system.
# This may be replaced when dependencies are built.
