file(REMOVE_RECURSE
  "CMakeFiles/multicore_system.dir/multicore_system.cpp.o"
  "CMakeFiles/multicore_system.dir/multicore_system.cpp.o.d"
  "multicore_system"
  "multicore_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicore_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
