# Empty compiler generated dependencies file for sensor_chain.
# This may be replaced when dependencies are built.
