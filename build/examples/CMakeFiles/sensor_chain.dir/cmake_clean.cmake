file(REMOVE_RECURSE
  "CMakeFiles/sensor_chain.dir/sensor_chain.cpp.o"
  "CMakeFiles/sensor_chain.dir/sensor_chain.cpp.o.d"
  "sensor_chain"
  "sensor_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
