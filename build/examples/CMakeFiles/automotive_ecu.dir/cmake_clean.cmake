file(REMOVE_RECURSE
  "CMakeFiles/automotive_ecu.dir/automotive_ecu.cpp.o"
  "CMakeFiles/automotive_ecu.dir/automotive_ecu.cpp.o.d"
  "automotive_ecu"
  "automotive_ecu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_ecu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
