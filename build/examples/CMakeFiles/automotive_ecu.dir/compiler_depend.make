# Empty compiler generated dependencies file for automotive_ecu.
# This may be replaced when dependencies are built.
