file(REMOVE_RECURSE
  "libmcs_sim.a"
)
