# Empty dependencies file for mcs_sim.
# This may be replaced when dependencies are built.
