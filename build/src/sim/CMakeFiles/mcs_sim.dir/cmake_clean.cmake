file(REMOVE_RECURSE
  "CMakeFiles/mcs_sim.dir/chain_age.cpp.o"
  "CMakeFiles/mcs_sim.dir/chain_age.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/checker.cpp.o"
  "CMakeFiles/mcs_sim.dir/checker.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/engine.cpp.o"
  "CMakeFiles/mcs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/gantt.cpp.o"
  "CMakeFiles/mcs_sim.dir/gantt.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/job_source.cpp.o"
  "CMakeFiles/mcs_sim.dir/job_source.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/metrics.cpp.o"
  "CMakeFiles/mcs_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/system.cpp.o"
  "CMakeFiles/mcs_sim.dir/system.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/trace.cpp.o"
  "CMakeFiles/mcs_sim.dir/trace.cpp.o.d"
  "CMakeFiles/mcs_sim.dir/trace_export.cpp.o"
  "CMakeFiles/mcs_sim.dir/trace_export.cpp.o.d"
  "libmcs_sim.a"
  "libmcs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
