
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/chain_age.cpp" "src/sim/CMakeFiles/mcs_sim.dir/chain_age.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/chain_age.cpp.o.d"
  "/root/repo/src/sim/checker.cpp" "src/sim/CMakeFiles/mcs_sim.dir/checker.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/checker.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/mcs_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/gantt.cpp" "src/sim/CMakeFiles/mcs_sim.dir/gantt.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/gantt.cpp.o.d"
  "/root/repo/src/sim/job_source.cpp" "src/sim/CMakeFiles/mcs_sim.dir/job_source.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/job_source.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/sim/CMakeFiles/mcs_sim.dir/metrics.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/metrics.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/mcs_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/system.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/mcs_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/mcs_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/mcs_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/mcs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
