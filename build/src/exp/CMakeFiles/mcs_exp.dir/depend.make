# Empty dependencies file for mcs_exp.
# This may be replaced when dependencies are built.
