file(REMOVE_RECURSE
  "CMakeFiles/mcs_exp.dir/experiment.cpp.o"
  "CMakeFiles/mcs_exp.dir/experiment.cpp.o.d"
  "CMakeFiles/mcs_exp.dir/figures.cpp.o"
  "CMakeFiles/mcs_exp.dir/figures.cpp.o.d"
  "libmcs_exp.a"
  "libmcs_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
