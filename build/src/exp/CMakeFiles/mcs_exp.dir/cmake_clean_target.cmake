file(REMOVE_RECURSE
  "libmcs_exp.a"
)
