file(REMOVE_RECURSE
  "CMakeFiles/mcs_lp.dir/lp_writer.cpp.o"
  "CMakeFiles/mcs_lp.dir/lp_writer.cpp.o.d"
  "CMakeFiles/mcs_lp.dir/milp.cpp.o"
  "CMakeFiles/mcs_lp.dir/milp.cpp.o.d"
  "CMakeFiles/mcs_lp.dir/model.cpp.o"
  "CMakeFiles/mcs_lp.dir/model.cpp.o.d"
  "CMakeFiles/mcs_lp.dir/simplex.cpp.o"
  "CMakeFiles/mcs_lp.dir/simplex.cpp.o.d"
  "libmcs_lp.a"
  "libmcs_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
