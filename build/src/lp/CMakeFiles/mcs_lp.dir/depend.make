# Empty dependencies file for mcs_lp.
# This may be replaced when dependencies are built.
