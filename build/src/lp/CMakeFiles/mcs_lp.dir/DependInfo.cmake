
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/lp_writer.cpp" "src/lp/CMakeFiles/mcs_lp.dir/lp_writer.cpp.o" "gcc" "src/lp/CMakeFiles/mcs_lp.dir/lp_writer.cpp.o.d"
  "/root/repo/src/lp/milp.cpp" "src/lp/CMakeFiles/mcs_lp.dir/milp.cpp.o" "gcc" "src/lp/CMakeFiles/mcs_lp.dir/milp.cpp.o.d"
  "/root/repo/src/lp/model.cpp" "src/lp/CMakeFiles/mcs_lp.dir/model.cpp.o" "gcc" "src/lp/CMakeFiles/mcs_lp.dir/model.cpp.o.d"
  "/root/repo/src/lp/simplex.cpp" "src/lp/CMakeFiles/mcs_lp.dir/simplex.cpp.o" "gcc" "src/lp/CMakeFiles/mcs_lp.dir/simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
