file(REMOVE_RECURSE
  "libmcs_lp.a"
)
