# Empty dependencies file for mcs_rt.
# This may be replaced when dependencies are built.
