file(REMOVE_RECURSE
  "libmcs_rt.a"
)
