file(REMOVE_RECURSE
  "CMakeFiles/mcs_rt.dir/arrival.cpp.o"
  "CMakeFiles/mcs_rt.dir/arrival.cpp.o.d"
  "CMakeFiles/mcs_rt.dir/arrival_estimation.cpp.o"
  "CMakeFiles/mcs_rt.dir/arrival_estimation.cpp.o.d"
  "CMakeFiles/mcs_rt.dir/chain.cpp.o"
  "CMakeFiles/mcs_rt.dir/chain.cpp.o.d"
  "CMakeFiles/mcs_rt.dir/contention.cpp.o"
  "CMakeFiles/mcs_rt.dir/contention.cpp.o.d"
  "CMakeFiles/mcs_rt.dir/io.cpp.o"
  "CMakeFiles/mcs_rt.dir/io.cpp.o.d"
  "CMakeFiles/mcs_rt.dir/task.cpp.o"
  "CMakeFiles/mcs_rt.dir/task.cpp.o.d"
  "libmcs_rt.a"
  "libmcs_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
