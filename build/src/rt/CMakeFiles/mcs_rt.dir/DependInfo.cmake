
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/arrival.cpp" "src/rt/CMakeFiles/mcs_rt.dir/arrival.cpp.o" "gcc" "src/rt/CMakeFiles/mcs_rt.dir/arrival.cpp.o.d"
  "/root/repo/src/rt/arrival_estimation.cpp" "src/rt/CMakeFiles/mcs_rt.dir/arrival_estimation.cpp.o" "gcc" "src/rt/CMakeFiles/mcs_rt.dir/arrival_estimation.cpp.o.d"
  "/root/repo/src/rt/chain.cpp" "src/rt/CMakeFiles/mcs_rt.dir/chain.cpp.o" "gcc" "src/rt/CMakeFiles/mcs_rt.dir/chain.cpp.o.d"
  "/root/repo/src/rt/contention.cpp" "src/rt/CMakeFiles/mcs_rt.dir/contention.cpp.o" "gcc" "src/rt/CMakeFiles/mcs_rt.dir/contention.cpp.o.d"
  "/root/repo/src/rt/io.cpp" "src/rt/CMakeFiles/mcs_rt.dir/io.cpp.o" "gcc" "src/rt/CMakeFiles/mcs_rt.dir/io.cpp.o.d"
  "/root/repo/src/rt/task.cpp" "src/rt/CMakeFiles/mcs_rt.dir/task.cpp.o" "gcc" "src/rt/CMakeFiles/mcs_rt.dir/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
