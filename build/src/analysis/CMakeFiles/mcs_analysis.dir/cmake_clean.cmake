file(REMOVE_RECURSE
  "CMakeFiles/mcs_analysis.dir/chains.cpp.o"
  "CMakeFiles/mcs_analysis.dir/chains.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/greedy.cpp.o"
  "CMakeFiles/mcs_analysis.dir/greedy.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/milp_formulation.cpp.o"
  "CMakeFiles/mcs_analysis.dir/milp_formulation.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/nps.cpp.o"
  "CMakeFiles/mcs_analysis.dir/nps.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/opa.cpp.o"
  "CMakeFiles/mcs_analysis.dir/opa.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/response_time.cpp.o"
  "CMakeFiles/mcs_analysis.dir/response_time.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/schedulability.cpp.o"
  "CMakeFiles/mcs_analysis.dir/schedulability.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/sensitivity.cpp.o"
  "CMakeFiles/mcs_analysis.dir/sensitivity.cpp.o.d"
  "CMakeFiles/mcs_analysis.dir/window.cpp.o"
  "CMakeFiles/mcs_analysis.dir/window.cpp.o.d"
  "libmcs_analysis.a"
  "libmcs_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
