# Empty compiler generated dependencies file for mcs_analysis.
# This may be replaced when dependencies are built.
