
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/chains.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/chains.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/chains.cpp.o.d"
  "/root/repo/src/analysis/greedy.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/greedy.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/greedy.cpp.o.d"
  "/root/repo/src/analysis/milp_formulation.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/milp_formulation.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/milp_formulation.cpp.o.d"
  "/root/repo/src/analysis/nps.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/nps.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/nps.cpp.o.d"
  "/root/repo/src/analysis/opa.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/opa.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/opa.cpp.o.d"
  "/root/repo/src/analysis/response_time.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/response_time.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/response_time.cpp.o.d"
  "/root/repo/src/analysis/schedulability.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/schedulability.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/schedulability.cpp.o.d"
  "/root/repo/src/analysis/sensitivity.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/sensitivity.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/sensitivity.cpp.o.d"
  "/root/repo/src/analysis/window.cpp" "src/analysis/CMakeFiles/mcs_analysis.dir/window.cpp.o" "gcc" "src/analysis/CMakeFiles/mcs_analysis.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/mcs_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/mcs_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mcs_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
