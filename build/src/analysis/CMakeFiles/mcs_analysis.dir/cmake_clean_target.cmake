file(REMOVE_RECURSE
  "libmcs_analysis.a"
)
