file(REMOVE_RECURSE
  "CMakeFiles/mcs_support.dir/contracts.cpp.o"
  "CMakeFiles/mcs_support.dir/contracts.cpp.o.d"
  "CMakeFiles/mcs_support.dir/csv.cpp.o"
  "CMakeFiles/mcs_support.dir/csv.cpp.o.d"
  "CMakeFiles/mcs_support.dir/rng.cpp.o"
  "CMakeFiles/mcs_support.dir/rng.cpp.o.d"
  "CMakeFiles/mcs_support.dir/stats.cpp.o"
  "CMakeFiles/mcs_support.dir/stats.cpp.o.d"
  "CMakeFiles/mcs_support.dir/thread_pool.cpp.o"
  "CMakeFiles/mcs_support.dir/thread_pool.cpp.o.d"
  "libmcs_support.a"
  "libmcs_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
