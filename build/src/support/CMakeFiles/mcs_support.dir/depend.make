# Empty dependencies file for mcs_support.
# This may be replaced when dependencies are built.
