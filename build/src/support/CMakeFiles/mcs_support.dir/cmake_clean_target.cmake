file(REMOVE_RECURSE
  "libmcs_support.a"
)
