file(REMOVE_RECURSE
  "CMakeFiles/mcs_gen.dir/generator.cpp.o"
  "CMakeFiles/mcs_gen.dir/generator.cpp.o.d"
  "CMakeFiles/mcs_gen.dir/uunifast.cpp.o"
  "CMakeFiles/mcs_gen.dir/uunifast.cpp.o.d"
  "libmcs_gen.a"
  "libmcs_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcs_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
