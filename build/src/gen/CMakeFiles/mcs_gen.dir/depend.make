# Empty dependencies file for mcs_gen.
# This may be replaced when dependencies are built.
