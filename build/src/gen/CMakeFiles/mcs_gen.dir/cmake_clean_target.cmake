file(REMOVE_RECURSE
  "libmcs_gen.a"
)
