file(REMOVE_RECURSE
  "CMakeFiles/test_lp_simplex.dir/test_lp_simplex.cpp.o"
  "CMakeFiles/test_lp_simplex.dir/test_lp_simplex.cpp.o.d"
  "test_lp_simplex"
  "test_lp_simplex.pdb"
  "test_lp_simplex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_simplex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
