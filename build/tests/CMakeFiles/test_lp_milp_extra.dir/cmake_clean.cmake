file(REMOVE_RECURSE
  "CMakeFiles/test_lp_milp_extra.dir/test_lp_milp_extra.cpp.o"
  "CMakeFiles/test_lp_milp_extra.dir/test_lp_milp_extra.cpp.o.d"
  "test_lp_milp_extra"
  "test_lp_milp_extra.pdb"
  "test_lp_milp_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_milp_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
