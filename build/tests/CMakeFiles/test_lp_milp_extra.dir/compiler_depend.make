# Empty compiler generated dependencies file for test_lp_milp_extra.
# This may be replaced when dependencies are built.
