# Empty dependencies file for test_sim_gantt.
# This may be replaced when dependencies are built.
