file(REMOVE_RECURSE
  "CMakeFiles/test_sim_gantt.dir/test_sim_gantt.cpp.o"
  "CMakeFiles/test_sim_gantt.dir/test_sim_gantt.cpp.o.d"
  "test_sim_gantt"
  "test_sim_gantt.pdb"
  "test_sim_gantt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_gantt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
