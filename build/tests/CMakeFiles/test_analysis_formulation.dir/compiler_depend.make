# Empty compiler generated dependencies file for test_analysis_formulation.
# This may be replaced when dependencies are built.
