file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_formulation.dir/test_analysis_formulation.cpp.o"
  "CMakeFiles/test_analysis_formulation.dir/test_analysis_formulation.cpp.o.d"
  "test_analysis_formulation"
  "test_analysis_formulation.pdb"
  "test_analysis_formulation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_formulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
