# Empty compiler generated dependencies file for test_sim_checker_negative.
# This may be replaced when dependencies are built.
