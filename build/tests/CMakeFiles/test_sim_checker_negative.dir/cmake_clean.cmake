file(REMOVE_RECURSE
  "CMakeFiles/test_sim_checker_negative.dir/test_sim_checker_negative.cpp.o"
  "CMakeFiles/test_sim_checker_negative.dir/test_sim_checker_negative.cpp.o.d"
  "test_sim_checker_negative"
  "test_sim_checker_negative.pdb"
  "test_sim_checker_negative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_checker_negative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
