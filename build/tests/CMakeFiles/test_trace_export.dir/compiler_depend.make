# Empty compiler generated dependencies file for test_trace_export.
# This may be replaced when dependencies are built.
