file(REMOVE_RECURSE
  "CMakeFiles/test_trace_export.dir/test_trace_export.cpp.o"
  "CMakeFiles/test_trace_export.dir/test_trace_export.cpp.o.d"
  "test_trace_export"
  "test_trace_export.pdb"
  "test_trace_export[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
