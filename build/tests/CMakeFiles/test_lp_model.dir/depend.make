# Empty dependencies file for test_lp_model.
# This may be replaced when dependencies are built.
