file(REMOVE_RECURSE
  "CMakeFiles/test_lp_model.dir/test_lp_model.cpp.o"
  "CMakeFiles/test_lp_model.dir/test_lp_model.cpp.o.d"
  "test_lp_model"
  "test_lp_model.pdb"
  "test_lp_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
