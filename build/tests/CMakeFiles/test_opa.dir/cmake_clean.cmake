file(REMOVE_RECURSE
  "CMakeFiles/test_opa.dir/test_opa.cpp.o"
  "CMakeFiles/test_opa.dir/test_opa.cpp.o.d"
  "test_opa"
  "test_opa.pdb"
  "test_opa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
