# Empty compiler generated dependencies file for test_opa.
# This may be replaced when dependencies are built.
