# Empty dependencies file for test_chains.
# This may be replaced when dependencies are built.
