file(REMOVE_RECURSE
  "CMakeFiles/test_chains.dir/test_chains.cpp.o"
  "CMakeFiles/test_chains.dir/test_chains.cpp.o.d"
  "test_chains"
  "test_chains.pdb"
  "test_chains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
