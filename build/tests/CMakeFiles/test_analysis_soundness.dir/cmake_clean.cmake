file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_soundness.dir/test_analysis_soundness.cpp.o"
  "CMakeFiles/test_analysis_soundness.dir/test_analysis_soundness.cpp.o.d"
  "test_analysis_soundness"
  "test_analysis_soundness.pdb"
  "test_analysis_soundness[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
