# Empty compiler generated dependencies file for test_analysis_soundness.
# This may be replaced when dependencies are built.
