file(REMOVE_RECURSE
  "CMakeFiles/test_lp_milp.dir/test_lp_milp.cpp.o"
  "CMakeFiles/test_lp_milp.dir/test_lp_milp.cpp.o.d"
  "test_lp_milp"
  "test_lp_milp.pdb"
  "test_lp_milp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_milp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
