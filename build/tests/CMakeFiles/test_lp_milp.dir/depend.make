# Empty dependencies file for test_lp_milp.
# This may be replaced when dependencies are built.
