file(REMOVE_RECURSE
  "CMakeFiles/test_lp_writer.dir/test_lp_writer.cpp.o"
  "CMakeFiles/test_lp_writer.dir/test_lp_writer.cpp.o.d"
  "test_lp_writer"
  "test_lp_writer.pdb"
  "test_lp_writer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_writer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
