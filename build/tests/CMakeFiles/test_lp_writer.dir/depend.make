# Empty dependencies file for test_lp_writer.
# This may be replaced when dependencies are built.
