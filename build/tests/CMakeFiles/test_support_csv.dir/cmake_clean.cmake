file(REMOVE_RECURSE
  "CMakeFiles/test_support_csv.dir/test_support_csv.cpp.o"
  "CMakeFiles/test_support_csv.dir/test_support_csv.cpp.o.d"
  "test_support_csv"
  "test_support_csv.pdb"
  "test_support_csv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
