# Empty dependencies file for test_support_csv.
# This may be replaced when dependencies are built.
