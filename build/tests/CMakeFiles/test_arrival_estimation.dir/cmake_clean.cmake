file(REMOVE_RECURSE
  "CMakeFiles/test_arrival_estimation.dir/test_arrival_estimation.cpp.o"
  "CMakeFiles/test_arrival_estimation.dir/test_arrival_estimation.cpp.o.d"
  "test_arrival_estimation"
  "test_arrival_estimation.pdb"
  "test_arrival_estimation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrival_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
