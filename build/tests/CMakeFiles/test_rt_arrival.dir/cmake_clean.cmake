file(REMOVE_RECURSE
  "CMakeFiles/test_rt_arrival.dir/test_rt_arrival.cpp.o"
  "CMakeFiles/test_rt_arrival.dir/test_rt_arrival.cpp.o.d"
  "test_rt_arrival"
  "test_rt_arrival.pdb"
  "test_rt_arrival[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
