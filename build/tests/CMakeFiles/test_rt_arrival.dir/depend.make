# Empty dependencies file for test_rt_arrival.
# This may be replaced when dependencies are built.
