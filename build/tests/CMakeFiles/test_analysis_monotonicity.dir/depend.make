# Empty dependencies file for test_analysis_monotonicity.
# This may be replaced when dependencies are built.
