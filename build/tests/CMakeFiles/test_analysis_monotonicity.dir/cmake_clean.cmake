file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_monotonicity.dir/test_analysis_monotonicity.cpp.o"
  "CMakeFiles/test_analysis_monotonicity.dir/test_analysis_monotonicity.cpp.o.d"
  "test_analysis_monotonicity"
  "test_analysis_monotonicity.pdb"
  "test_analysis_monotonicity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_monotonicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
