file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_arrival_models.dir/test_analysis_arrival_models.cpp.o"
  "CMakeFiles/test_analysis_arrival_models.dir/test_analysis_arrival_models.cpp.o.d"
  "test_analysis_arrival_models"
  "test_analysis_arrival_models.pdb"
  "test_analysis_arrival_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_arrival_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
