# Empty compiler generated dependencies file for test_analysis_arrival_models.
# This may be replaced when dependencies are built.
