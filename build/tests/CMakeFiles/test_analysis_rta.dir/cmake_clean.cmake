file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_rta.dir/test_analysis_rta.cpp.o"
  "CMakeFiles/test_analysis_rta.dir/test_analysis_rta.cpp.o.d"
  "test_analysis_rta"
  "test_analysis_rta.pdb"
  "test_analysis_rta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_rta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
