# Empty dependencies file for test_analysis_rta.
# This may be replaced when dependencies are built.
