file(REMOVE_RECURSE
  "CMakeFiles/test_support_rng.dir/test_support_rng.cpp.o"
  "CMakeFiles/test_support_rng.dir/test_support_rng.cpp.o.d"
  "test_support_rng"
  "test_support_rng.pdb"
  "test_support_rng[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
