# Empty dependencies file for test_support_rng.
# This may be replaced when dependencies are built.
