file(REMOVE_RECURSE
  "CMakeFiles/test_support_contracts.dir/test_support_contracts.cpp.o"
  "CMakeFiles/test_support_contracts.dir/test_support_contracts.cpp.o.d"
  "test_support_contracts"
  "test_support_contracts.pdb"
  "test_support_contracts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
