# Empty compiler generated dependencies file for test_support_contracts.
# This may be replaced when dependencies are built.
