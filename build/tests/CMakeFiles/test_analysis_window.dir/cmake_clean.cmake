file(REMOVE_RECURSE
  "CMakeFiles/test_analysis_window.dir/test_analysis_window.cpp.o"
  "CMakeFiles/test_analysis_window.dir/test_analysis_window.cpp.o.d"
  "test_analysis_window"
  "test_analysis_window.pdb"
  "test_analysis_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_analysis_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
