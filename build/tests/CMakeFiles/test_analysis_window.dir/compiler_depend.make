# Empty compiler generated dependencies file for test_analysis_window.
# This may be replaced when dependencies are built.
