# Empty dependencies file for test_rt_io.
# This may be replaced when dependencies are built.
