file(REMOVE_RECURSE
  "CMakeFiles/test_rt_io.dir/test_rt_io.cpp.o"
  "CMakeFiles/test_rt_io.dir/test_rt_io.cpp.o.d"
  "test_rt_io"
  "test_rt_io.pdb"
  "test_rt_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
