file(REMOVE_RECURSE
  "CMakeFiles/test_rt_task.dir/test_rt_task.cpp.o"
  "CMakeFiles/test_rt_task.dir/test_rt_task.cpp.o.d"
  "test_rt_task"
  "test_rt_task.pdb"
  "test_rt_task[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
