# Empty compiler generated dependencies file for test_rt_task.
# This may be replaced when dependencies are built.
