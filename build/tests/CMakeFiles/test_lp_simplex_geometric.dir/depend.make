# Empty dependencies file for test_lp_simplex_geometric.
# This may be replaced when dependencies are built.
