file(REMOVE_RECURSE
  "CMakeFiles/test_lp_simplex_geometric.dir/test_lp_simplex_geometric.cpp.o"
  "CMakeFiles/test_lp_simplex_geometric.dir/test_lp_simplex_geometric.cpp.o.d"
  "test_lp_simplex_geometric"
  "test_lp_simplex_geometric.pdb"
  "test_lp_simplex_geometric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_simplex_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
