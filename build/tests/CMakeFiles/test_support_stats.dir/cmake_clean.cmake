file(REMOVE_RECURSE
  "CMakeFiles/test_support_stats.dir/test_support_stats.cpp.o"
  "CMakeFiles/test_support_stats.dir/test_support_stats.cpp.o.d"
  "test_support_stats"
  "test_support_stats.pdb"
  "test_support_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
