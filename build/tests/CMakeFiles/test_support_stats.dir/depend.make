# Empty dependencies file for test_support_stats.
# This may be replaced when dependencies are built.
