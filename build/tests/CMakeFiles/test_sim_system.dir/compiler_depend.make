# Empty compiler generated dependencies file for test_sim_system.
# This may be replaced when dependencies are built.
