file(REMOVE_RECURSE
  "CMakeFiles/test_sim_system.dir/test_sim_system.cpp.o"
  "CMakeFiles/test_sim_system.dir/test_sim_system.cpp.o.d"
  "test_sim_system"
  "test_sim_system.pdb"
  "test_sim_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
