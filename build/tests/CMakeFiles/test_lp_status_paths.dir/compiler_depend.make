# Empty compiler generated dependencies file for test_lp_status_paths.
# This may be replaced when dependencies are built.
