file(REMOVE_RECURSE
  "CMakeFiles/test_lp_status_paths.dir/test_lp_status_paths.cpp.o"
  "CMakeFiles/test_lp_status_paths.dir/test_lp_status_paths.cpp.o.d"
  "test_lp_status_paths"
  "test_lp_status_paths.pdb"
  "test_lp_status_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lp_status_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
